//! Static selection schemes.

use crate::accuracy::AccuracyProfile;
use crate::bias::BiasProfile;
use crate::hints::HintDatabase;
use crate::interference::InterferenceRanking;
use sdbp_trace::BranchAddr;
use std::collections::HashMap;
use std::fmt;

/// How branches are chosen for static prediction.
///
/// The two schemes evaluated throughout the paper, plus one extension:
///
/// * [`SelectionScheme::Bias`] — the paper's **Static_95**: every branch
///   whose bias exceeds a cutoff is predicted statically in its majority
///   direction. Targets *easy* branches to free dynamic capacity;
///   predictor-independent.
/// * [`SelectionScheme::VsAccuracy`] — the paper's **Static_Acc**: every
///   branch whose bias exceeds the *target dynamic predictor's* accuracy on
///   that branch is predicted statically. Targets *hard* branches; by
///   construction the per-branch accuracy can only improve (on the profiled
///   input).
/// * [`SelectionScheme::Factor`] — **Static_Fac**, a single-iteration
///   version of Lindsay's scheme: select when `bias > factor × accuracy`;
///   `factor > 1` demands a margin (more conservative), `factor < 1`
///   selects more aggressively.
///
/// Plus the paper's §5 future-work idea in two forms:
/// [`SelectionScheme::CollisionAware`] (measured) and
/// [`SelectionScheme::Collide`] (statically analyzed). The full catalog,
/// with the frontier ablation comparing them, is in `docs/predictors.md`.
///
/// # Examples
///
/// ```
/// use sdbp_profiles::{BiasProfile, SelectionScheme};
/// use sdbp_trace::{BranchAddr, SiteStats};
///
/// let mut bias = BiasProfile::new();
/// bias.insert(BranchAddr(0x10), SiteStats { executed: 100, taken: 99 });
/// bias.insert(BranchAddr(0x14), SiteStats { executed: 100, taken: 55 });
///
/// let scheme: SelectionScheme = "static_95".parse().unwrap();
/// let hints = scheme.select(&bias, None).unwrap();
/// assert_eq!(hints.get(BranchAddr(0x10)), Some(true), "99% taken: hinted");
/// assert_eq!(hints.get(BranchAddr(0x14)), None, "55% bias stays dynamic");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelectionScheme {
    /// No static prediction — the pure dynamic baseline.
    None,
    /// Static_95-style: `bias > cutoff`.
    Bias {
        /// The bias cutoff (the paper uses 0.95).
        cutoff: f64,
    },
    /// Static_Acc: `bias > accuracy(branch)`.
    VsAccuracy,
    /// Static_Fac: `bias > factor × accuracy(branch)`.
    Factor {
        /// The accuracy margin factor.
        factor: f64,
    },
    /// Collision-aware selection — the idea the paper sketches as future
    /// work in §5: statically predict the branches most involved in
    /// *destructive* collisions, provided their bias is high enough that a
    /// static hint is safe. Removing exactly the aliasing troublemakers
    /// frees the dynamic predictor where it hurts most. This variant reads
    /// collision involvement *measured by simulation* from the accuracy
    /// profile; [`SelectionScheme::Collide`] predicts it statically instead.
    CollisionAware {
        /// Minimum bias for a hint (protects against bad static hints).
        min_bias: f64,
        /// Minimum destructive-collision rate for selection.
        min_collision_rate: f64,
    },
    /// **Static_Collide**: the same future-work idea driven by the *static*
    /// interference analyzer ([`rank_interference`]) instead of a measured
    /// accuracy profile — no simulation pass needed, only the bias profile
    /// and the target predictor's index function. A branch is selected when
    /// its bias clears `min_bias` and its predicted destructive score per
    /// execution clears `min_score_rate`.
    ///
    /// [`rank_interference`]: crate::interference::rank_interference
    Collide {
        /// Minimum bias for a hint (protects against bad static hints).
        min_bias: f64,
        /// Minimum predicted destructive score per execution.
        min_score_rate: f64,
    },
}

impl SelectionScheme {
    /// The paper's `Static_95` configuration.
    pub fn static_95() -> Self {
        SelectionScheme::Bias { cutoff: 0.95 }
    }

    /// The paper's `Static_Acc` configuration.
    pub fn static_acc() -> Self {
        SelectionScheme::VsAccuracy
    }

    /// The collision-aware scheme with the defaults used by the ablation
    /// harness.
    pub fn collision_aware() -> Self {
        SelectionScheme::CollisionAware {
            min_bias: 0.80,
            min_collision_rate: 0.05,
        }
    }

    /// The `Static_Collide` scheme with the same thresholds as
    /// [`collision_aware`](SelectionScheme::collision_aware), so the two
    /// ablate against each other cleanly: any result difference comes from
    /// *predicted* vs *measured* interference, not from tuning.
    pub fn static_collide() -> Self {
        SelectionScheme::Collide {
            min_bias: 0.80,
            min_score_rate: 0.05,
        }
    }

    /// Whether the scheme needs a per-branch accuracy profile of the target
    /// dynamic predictor (i.e. a simulation pass in phase one).
    pub fn needs_accuracy_profile(&self) -> bool {
        matches!(
            self,
            SelectionScheme::VsAccuracy
                | SelectionScheme::Factor { .. }
                | SelectionScheme::CollisionAware { .. }
        )
    }

    /// Whether the scheme needs a static interference ranking of the target
    /// predictor (i.e. a [`rank_interference`] run in phase one — which
    /// requires the predictor to expose its index function).
    ///
    /// [`rank_interference`]: crate::interference::rank_interference
    pub fn needs_interference_ranking(&self) -> bool {
        matches!(self, SelectionScheme::Collide { .. })
    }

    /// Selects the hint database.
    ///
    /// Hints are always the branch's majority direction from `bias`.
    /// Branches executed in the profile but absent from `accuracy` (possible
    /// when the two profiles come from different runs) are skipped by the
    /// accuracy-based schemes.
    ///
    /// # Errors
    ///
    /// [`SelectError::MissingAccuracyProfile`] when an accuracy-based scheme
    /// is invoked without one, [`SelectError::MissingInterferenceRanking`]
    /// for [`SelectionScheme::Collide`] (which always needs a ranking — use
    /// [`select_with_interference`](SelectionScheme::select_with_interference)).
    pub fn select(
        &self,
        bias: &BiasProfile,
        accuracy: Option<&AccuracyProfile>,
    ) -> Result<HintDatabase, SelectError> {
        self.select_with_interference(bias, accuracy, None)
    }

    /// Selects the hint database, with a static interference ranking for
    /// [`SelectionScheme::Collide`]. The other schemes ignore `ranking`;
    /// [`select`](SelectionScheme::select) is this with `ranking: None`.
    ///
    /// # Errors
    ///
    /// As [`select`](SelectionScheme::select), plus
    /// [`SelectError::MissingInterferenceRanking`] when the scheme is
    /// [`SelectionScheme::Collide`] and `ranking` is `None`.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdbp_predictors::{PredictorConfig, PredictorKind};
    /// use sdbp_profiles::{rank_interference, BiasProfile, SelectionScheme};
    /// use sdbp_trace::{BranchAddr, SiteStats};
    ///
    /// // Two strongly biased, opposing branches sharing a bimodal entry.
    /// let mut bias = BiasProfile::new();
    /// bias.insert(BranchAddr(0x1000), SiteStats { executed: 100, taken: 100 });
    /// bias.insert(BranchAddr(0x1000 + 256 * 4), SiteStats { executed: 100, taken: 0 });
    /// let config = PredictorConfig::new(PredictorKind::Bimodal, 64).unwrap();
    /// let ranking = rank_interference(&bias, config, &Default::default()).unwrap();
    /// let hints = SelectionScheme::static_collide()
    ///     .select_with_interference(&bias, None, Some(&ranking))
    ///     .unwrap();
    /// assert_eq!(hints.get(BranchAddr(0x1000)), Some(true));
    /// ```
    pub fn select_with_interference(
        &self,
        bias: &BiasProfile,
        accuracy: Option<&AccuracyProfile>,
        ranking: Option<&InterferenceRanking>,
    ) -> Result<HintDatabase, SelectError> {
        let mut db = HintDatabase::new();
        match *self {
            SelectionScheme::None => {}
            SelectionScheme::Bias { cutoff } => {
                for (pc, stats) in bias.iter() {
                    if stats.bias() > cutoff {
                        db.insert(pc, stats.majority_taken());
                    }
                }
            }
            SelectionScheme::VsAccuracy => {
                let acc = accuracy.ok_or(SelectError::MissingAccuracyProfile)?;
                for (pc, stats) in bias.iter() {
                    if let Some(a) = acc.accuracy(pc) {
                        if stats.bias() > a {
                            db.insert(pc, stats.majority_taken());
                        }
                    }
                }
            }
            SelectionScheme::Factor { factor } => {
                let acc = accuracy.ok_or(SelectError::MissingAccuracyProfile)?;
                for (pc, stats) in bias.iter() {
                    if let Some(a) = acc.accuracy(pc) {
                        if stats.bias() > factor * a {
                            db.insert(pc, stats.majority_taken());
                        }
                    }
                }
            }
            SelectionScheme::CollisionAware {
                min_bias,
                min_collision_rate,
            } => {
                let acc = accuracy.ok_or(SelectError::MissingAccuracyProfile)?;
                for (pc, stats) in bias.iter() {
                    if stats.bias() <= min_bias {
                        continue;
                    }
                    if let Some(site) = acc.site(pc) {
                        if site.destructive_rate() > min_collision_rate {
                            db.insert(pc, stats.majority_taken());
                        }
                    }
                }
            }
            SelectionScheme::Collide {
                min_bias,
                min_score_rate,
            } => {
                let ranking = ranking.ok_or(SelectError::MissingInterferenceRanking)?;
                let scores: HashMap<BranchAddr, f64> =
                    ranking.hotspots.iter().map(|h| (h.pc, h.score)).collect();
                for (pc, stats) in bias.iter() {
                    if stats.bias() <= min_bias || stats.executed == 0 {
                        continue;
                    }
                    let score = scores.get(&pc).copied().unwrap_or(0.0);
                    if score / stats.executed as f64 > min_score_rate {
                        db.insert(pc, stats.majority_taken());
                    }
                }
            }
        }
        Ok(db)
    }

    /// The label used in the paper's figures.
    pub fn label(&self) -> String {
        match self {
            SelectionScheme::None => "none".to_string(),
            SelectionScheme::Bias { cutoff } => {
                format!("static_{:.0}", cutoff * 100.0)
            }
            SelectionScheme::VsAccuracy => "static_acc".to_string(),
            SelectionScheme::Factor { factor } => format!("static_fac{factor:.2}"),
            SelectionScheme::CollisionAware { .. } => "static_col".to_string(),
            SelectionScheme::Collide { .. } => "static_collide".to_string(),
        }
    }
}

impl fmt::Display for SelectionScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Parses the scheme syntax shared by the CLI, spec files, and the linter:
/// `none | static_95 | static_<pct> | static_acc | static_col |
/// static_collide` (with `collide` as a short alias).
///
/// This is the single source of truth for scheme names — `sdbp sim --scheme`
/// and `sdbp check`'s spec parser both call it, so they cannot drift.
impl std::str::FromStr for SelectionScheme {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" => Ok(SelectionScheme::None),
            "static_95" => Ok(SelectionScheme::static_95()),
            "static_acc" => Ok(SelectionScheme::static_acc()),
            "static_col" => Ok(SelectionScheme::collision_aware()),
            "static_collide" | "collide" => Ok(SelectionScheme::static_collide()),
            other => {
                let cutoff: f64 = other
                    .strip_prefix("static_")
                    .and_then(|pct| pct.parse().ok())
                    .ok_or_else(|| {
                        format!(
                            "unknown scheme '{other}' (expected none, static_<pct>, \
                             static_acc, static_col, or static_collide)"
                        )
                    })?;
                Ok(SelectionScheme::Bias {
                    cutoff: cutoff / 100.0,
                })
            }
        }
    }
}

/// Errors from hint selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectError {
    /// An accuracy-based scheme was invoked without an accuracy profile.
    MissingAccuracyProfile,
    /// `Static_Collide` was invoked without an interference ranking —
    /// either none was supplied, or the target predictor does not expose
    /// its index function to static analysis.
    MissingInterferenceRanking,
}

impl fmt::Display for SelectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectError::MissingAccuracyProfile => {
                f.write_str("selection scheme requires a dynamic-predictor accuracy profile")
            }
            SelectError::MissingInterferenceRanking => f.write_str(
                "static_collide requires an interference ranking \
                 (the predictor must expose its index function)",
            ),
        }
    }
}

impl std::error::Error for SelectError {}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbp_predictors::Bimodal;
    use sdbp_trace::{BranchAddr, BranchEvent, SliceSource};

    /// 0x10: 98% taken; 0x20: 60% taken; 0x30: alternating.
    fn sample_events() -> Vec<BranchEvent> {
        let mut events = Vec::new();
        for i in 0..100 {
            events.push(BranchEvent::new(BranchAddr(0x10), i % 50 != 49, 0));
            events.push(BranchEvent::new(BranchAddr(0x20), i % 5 < 3, 0));
            events.push(BranchEvent::new(BranchAddr(0x30), i % 2 == 0, 0));
        }
        events
    }

    #[test]
    fn none_selects_nothing() {
        let bias = BiasProfile::from_source(SliceSource::new(&sample_events()));
        let db = SelectionScheme::None.select(&bias, None).unwrap();
        assert!(db.is_empty());
    }

    #[test]
    fn bias_scheme_selects_only_above_cutoff() {
        let bias = BiasProfile::from_source(SliceSource::new(&sample_events()));
        let db = SelectionScheme::static_95().select(&bias, None).unwrap();
        assert_eq!(db.get(BranchAddr(0x10)), Some(true), "98% taken selected");
        assert_eq!(db.get(BranchAddr(0x20)), None, "60% bias not selected");
        assert_eq!(db.get(BranchAddr(0x30)), None);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn bias_hint_follows_majority_direction() {
        let events: Vec<BranchEvent> = (0..100)
            .map(|i| BranchEvent::new(BranchAddr(0x40), i % 50 == 0, 0))
            .collect();
        let bias = BiasProfile::from_source(SliceSource::new(&events));
        let db = SelectionScheme::static_95().select(&bias, None).unwrap();
        assert_eq!(db.get(BranchAddr(0x40)), Some(false), "mostly not-taken");
    }

    #[test]
    fn vs_accuracy_targets_hard_branches() {
        let events = sample_events();
        let bias = BiasProfile::from_source(SliceSource::new(&events));
        let mut predictor = Bimodal::new(1024);
        let acc = AccuracyProfile::collect(SliceSource::new(&events), &mut predictor);
        let db = SelectionScheme::static_acc()
            .select(&bias, Some(&acc))
            .unwrap();
        // The alternating branch: bias 0.5, bimodal accuracy ~0 => NOT
        // selected (bias must EXCEED accuracy... here 0.5 > ~0.02, selected!)
        assert!(
            db.contains(BranchAddr(0x30)),
            "alternating branch is hard for bimodal: bias 0.5 > accuracy"
        );
        // The strongly biased branch: bimodal accuracy ≈ bias, so the strict
        // > comparison may or may not select it; the moderately biased one
        // is usually close. At minimum the hard branch is in and hints are
        // majority direction.
        for (_, hint) in db.iter() {
            let _ = hint;
        }
    }

    #[test]
    fn factor_scheme_is_monotone_in_factor() {
        let events = sample_events();
        let bias = BiasProfile::from_source(SliceSource::new(&events));
        let mut predictor = Bimodal::new(1024);
        let acc = AccuracyProfile::collect(SliceSource::new(&events), &mut predictor);
        let lax = SelectionScheme::Factor { factor: 0.8 }
            .select(&bias, Some(&acc))
            .unwrap();
        let strict = SelectionScheme::Factor { factor: 1.2 }
            .select(&bias, Some(&acc))
            .unwrap();
        assert!(lax.len() >= strict.len());
        for (pc, _) in strict.iter() {
            assert!(lax.contains(pc), "strict selection must be a subset");
        }
    }

    #[test]
    fn accuracy_schemes_require_profile() {
        let bias = BiasProfile::new();
        assert_eq!(
            SelectionScheme::VsAccuracy.select(&bias, None),
            Err(SelectError::MissingAccuracyProfile)
        );
        assert_eq!(
            SelectionScheme::Factor { factor: 1.0 }.select(&bias, None),
            Err(SelectError::MissingAccuracyProfile)
        );
    }

    #[test]
    fn labels_match_paper_names() {
        assert_eq!(SelectionScheme::None.label(), "none");
        assert_eq!(SelectionScheme::static_95().label(), "static_95");
        assert_eq!(SelectionScheme::static_acc().label(), "static_acc");
        assert_eq!(
            SelectionScheme::Factor { factor: 1.0 }.label(),
            "static_fac1.00"
        );
    }

    #[test]
    fn parses_the_cli_scheme_syntax() {
        assert_eq!("none".parse::<SelectionScheme>(), Ok(SelectionScheme::None));
        assert_eq!(
            "static_95".parse::<SelectionScheme>(),
            Ok(SelectionScheme::static_95())
        );
        assert_eq!(
            "static_acc".parse::<SelectionScheme>(),
            Ok(SelectionScheme::static_acc())
        );
        assert_eq!(
            "static_col".parse::<SelectionScheme>(),
            Ok(SelectionScheme::collision_aware())
        );
        assert_eq!(
            "static_80".parse::<SelectionScheme>(),
            Ok(SelectionScheme::Bias { cutoff: 0.80 })
        );
        let err = "statik_95".parse::<SelectionScheme>().unwrap_err();
        assert!(err.contains("statik_95"));
        assert!("static_x".parse::<SelectionScheme>().is_err());
    }

    #[test]
    fn needs_accuracy_profile_classification() {
        assert!(!SelectionScheme::None.needs_accuracy_profile());
        assert!(!SelectionScheme::static_95().needs_accuracy_profile());
        assert!(SelectionScheme::static_acc().needs_accuracy_profile());
        assert!(SelectionScheme::Factor { factor: 1.0 }.needs_accuracy_profile());
        // Static_Collide needs the *ranking*, not a simulation pass.
        assert!(!SelectionScheme::static_collide().needs_accuracy_profile());
        assert!(SelectionScheme::static_collide().needs_interference_ranking());
        assert!(!SelectionScheme::collision_aware().needs_interference_ranking());
    }

    #[test]
    fn collide_parses_and_labels() {
        assert_eq!(
            "static_collide".parse::<SelectionScheme>(),
            Ok(SelectionScheme::static_collide())
        );
        assert_eq!(
            "collide".parse::<SelectionScheme>(),
            Ok(SelectionScheme::static_collide())
        );
        assert_eq!(SelectionScheme::static_collide().label(), "static_collide");
    }

    #[test]
    fn collide_requires_a_ranking() {
        let bias = BiasProfile::new();
        assert_eq!(
            SelectionScheme::static_collide().select(&bias, None),
            Err(SelectError::MissingInterferenceRanking)
        );
    }

    #[test]
    fn collide_selects_biased_interference_hotspots() {
        use crate::interference::{rank_interference, InterferenceOptions};
        use sdbp_predictors::{PredictorConfig, PredictorKind};
        use sdbp_trace::SiteStats;

        // 64-byte bimodal: word indices 256 apart share an entry.
        let stride = 256u64 * 4;
        let mut bias = BiasProfile::new();
        // Opposing, strongly biased pair: both selected.
        bias.insert(
            BranchAddr(0x1000),
            SiteStats {
                executed: 1000,
                taken: 1000,
            },
        );
        bias.insert(
            BranchAddr(0x1000 + stride),
            SiteStats {
                executed: 1000,
                taken: 0,
            },
        );
        // Interfering but weakly biased: must be left dynamic.
        bias.insert(
            BranchAddr(0x2000),
            SiteStats {
                executed: 1000,
                taken: 600,
            },
        );
        bias.insert(
            BranchAddr(0x2000 + stride),
            SiteStats {
                executed: 1000,
                taken: 0,
            },
        );
        // Strongly biased but alone in its entry: nothing to fix.
        bias.insert(
            BranchAddr(0x3008),
            SiteStats {
                executed: 1000,
                taken: 1000,
            },
        );
        let config = PredictorConfig::new(PredictorKind::Bimodal, 64).unwrap();
        let ranking = rank_interference(&bias, config, &InterferenceOptions::default()).unwrap();
        let db = SelectionScheme::static_collide()
            .select_with_interference(&bias, None, Some(&ranking))
            .unwrap();
        assert_eq!(db.get(BranchAddr(0x1000)), Some(true));
        assert_eq!(db.get(BranchAddr(0x1000 + stride)), Some(false));
        assert!(!db.contains(BranchAddr(0x2000)), "weak bias stays dynamic");
        assert!(!db.contains(BranchAddr(0x3008)), "no interference, no hint");
        // The 80%-biased victim of the weak branch still clears both bars.
        assert_eq!(db.len(), 3, "{db:?}");
    }
}
