//! The Spike-like multi-run profile database.

use crate::bias::BiasProfile;
use sdbp_trace::BranchAddr;
use std::collections::HashSet;

/// A store of bias profiles from multiple runs of one program.
///
/// Models the workflow the paper proposes for robust profile-directed static
/// prediction (§5.1): Spike accumulates an execution profile per program
/// across instrumented runs, and the optimizer later draws hints from the
/// *merged* database. The key robustness operation is
/// [`ProfileDatabase::merged_stable`], which drops branches whose bias moved
/// by more than a threshold between runs — the fix that rescues `perl` and
/// `m88ksim` from naive cross-training in the paper's Figure 13.
///
/// # Examples
///
/// ```
/// use sdbp_profiles::{BiasProfile, ProfileDatabase};
/// use sdbp_trace::{BranchAddr, BranchEvent, SliceSource};
///
/// let run1 = BiasProfile::from_source(SliceSource::new(&[
///     BranchEvent::new(BranchAddr(0x10), true, 0),
/// ]));
/// let run2 = BiasProfile::from_source(SliceSource::new(&[
///     BranchEvent::new(BranchAddr(0x10), false, 0),
/// ]));
/// let mut db = ProfileDatabase::new("demo");
/// db.add_run("in1", run1);
/// db.add_run("in2", run2);
/// // 0x10 flipped 100% -> 0%: dropped at any reasonable threshold.
/// let stable = db.merged_stable(0.05);
/// assert!(stable.site(BranchAddr(0x10)).is_none());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileDatabase {
    program: String,
    runs: Vec<(String, BiasProfile)>,
}

impl ProfileDatabase {
    /// Creates an empty database for `program`.
    pub fn new(program: impl Into<String>) -> Self {
        Self {
            program: program.into(),
            runs: Vec::new(),
        }
    }

    /// The program this database profiles.
    pub fn program(&self) -> &str {
        &self.program
    }

    /// Adds one run's profile under a label (e.g. the input name).
    pub fn add_run(&mut self, label: impl Into<String>, profile: BiasProfile) -> &mut Self {
        self.runs.push((label.into(), profile));
        self
    }

    /// Number of stored runs.
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// The profile of a labeled run.
    pub fn run(&self, label: &str) -> Option<&BiasProfile> {
        self.runs.iter().find(|(l, _)| l == label).map(|(_, p)| p)
    }

    /// Iterates over `(label, profile)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &BiasProfile)> {
        self.runs.iter().map(|(l, p)| (l.as_str(), p))
    }

    /// Merges all runs by summing counts (Spike's accumulate).
    pub fn merged(&self) -> BiasProfile {
        let mut out = BiasProfile::new();
        for (_, profile) in &self.runs {
            out.merge(profile);
        }
        out
    }

    /// Merges all runs, then drops every branch whose taken-rate differs by
    /// more than `max_bias_change` between any two runs that executed it.
    ///
    /// A branch observed in only one run is kept (there is no evidence of
    /// instability). With fewer than two runs this equals
    /// [`ProfileDatabase::merged`].
    pub fn merged_stable(&self, max_bias_change: f64) -> BiasProfile {
        let mut merged = self.merged();
        for pc in self.unstable_sites(max_bias_change) {
            merged.remove(pc);
        }
        merged
    }

    /// The set of branches whose taken-rate moved by more than
    /// `max_bias_change` between some pair of runs.
    pub fn unstable_sites(&self, max_bias_change: f64) -> HashSet<BranchAddr> {
        let mut unstable = HashSet::new();
        if self.runs.len() < 2 {
            return unstable;
        }
        // Collect every pc observed anywhere.
        let mut all: HashSet<BranchAddr> = HashSet::new();
        for (_, p) in &self.runs {
            all.extend(p.iter().map(|(pc, _)| pc));
        }
        for pc in all {
            let rates: Vec<f64> = self
                .runs
                .iter()
                .filter_map(|(_, p)| p.site(pc))
                .filter(|s| s.executed > 0)
                .map(|s| s.taken_rate())
                .collect();
            if rates.len() < 2 {
                continue;
            }
            let min = rates.iter().copied().fold(f64::INFINITY, f64::min);
            let max = rates.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            if max - min > max_bias_change {
                unstable.insert(pc);
            }
        }
        unstable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbp_trace::SiteStats;

    fn profile_with(entries: &[(u64, u64, u64)]) -> BiasProfile {
        let mut p = BiasProfile::new();
        for &(pc, executed, taken) in entries {
            p.insert(BranchAddr(pc), SiteStats { executed, taken });
        }
        p
    }

    #[test]
    fn merged_sums_counts() {
        let mut db = ProfileDatabase::new("gcc");
        db.add_run("train", profile_with(&[(0x10, 100, 90), (0x20, 10, 1)]));
        db.add_run("ref", profile_with(&[(0x10, 50, 45), (0x30, 5, 5)]));
        assert_eq!(db.num_runs(), 2);
        assert_eq!(db.program(), "gcc");
        let m = db.merged();
        let s = m.site(BranchAddr(0x10)).unwrap();
        assert_eq!((s.executed, s.taken), (150, 135));
        assert!(m.site(BranchAddr(0x20)).is_some());
        assert!(m.site(BranchAddr(0x30)).is_some());
    }

    #[test]
    fn stable_merge_drops_flippers() {
        let mut db = ProfileDatabase::new("perl");
        db.add_run("train", profile_with(&[(0x10, 100, 98), (0x20, 100, 95)]));
        db.add_run("ref", profile_with(&[(0x10, 100, 2), (0x20, 100, 93)]));
        let stable = db.merged_stable(0.05);
        assert!(stable.site(BranchAddr(0x10)).is_none(), "0x10 flipped");
        assert!(
            stable.site(BranchAddr(0x20)).is_some(),
            "0x20 moved 2 points"
        );
        let unstable = db.unstable_sites(0.05);
        assert_eq!(unstable.len(), 1);
        assert!(unstable.contains(&BranchAddr(0x10)));
    }

    #[test]
    fn single_run_everything_is_stable() {
        let mut db = ProfileDatabase::new("go");
        db.add_run("train", profile_with(&[(0x10, 10, 0)]));
        assert!(db.unstable_sites(0.01).is_empty());
        assert_eq!(db.merged_stable(0.01), db.merged());
    }

    #[test]
    fn branch_seen_in_one_run_is_kept() {
        let mut db = ProfileDatabase::new("go");
        db.add_run("train", profile_with(&[(0x10, 10, 10)]));
        db.add_run("ref", profile_with(&[(0x20, 10, 0)]));
        let stable = db.merged_stable(0.01);
        assert!(stable.site(BranchAddr(0x10)).is_some());
        assert!(stable.site(BranchAddr(0x20)).is_some());
    }

    #[test]
    fn run_lookup_by_label() {
        let mut db = ProfileDatabase::new("x");
        db.add_run("train", profile_with(&[(0x10, 1, 1)]));
        assert!(db.run("train").is_some());
        assert!(db.run("ref").is_none());
        assert_eq!(db.iter().count(), 1);
    }
}
