//! Profile collection and static-hint selection.
//!
//! The paper's scheme runs in two phases (its §4): a **selection phase**
//! profiles the program (and optionally simulates the target dynamic
//! predictor) to decide which branches get static hints, and a **measurement
//! phase** simulates the combined static+dynamic predictor using those
//! hints. This crate implements phase one:
//!
//! * [`BiasProfile`] — per-branch execution/taken counts from a run,
//! * [`AccuracyProfile`] — per-branch accuracy of a given dynamic predictor,
//!   collected by simulation (the paper points at ProfileMe/Atom for this),
//! * [`SelectionScheme`] — the paper's `Static_95` (bias cutoff) and
//!   `Static_Acc` (bias > per-branch dynamic accuracy), plus the
//!   `Static_Fac` extension (Lindsay's factor scheme) and the two
//!   collision-driven schemes (`Static_Col` from measured collisions,
//!   `Static_Collide` from the static ranking in [`interference`]),
//! * [`HintDatabase`] — the selected hints, keyed by branch address — the
//!   software stand-in for the two IA-64-style hint bits,
//! * [`ProfileDatabase`] — a Spike-like multi-run store with profile
//!   merging and the >5%-bias-change filtering the paper proposes for
//!   robust cross-training (§5.1).
//!
//! # Examples
//!
//! ```
//! use sdbp_profiles::{BiasProfile, SelectionScheme};
//! use sdbp_trace::{BranchAddr, BranchEvent, SliceSource};
//!
//! let events = [
//!     BranchEvent::new(BranchAddr(0x10), true, 1),
//!     BranchEvent::new(BranchAddr(0x10), true, 1),
//!     BranchEvent::new(BranchAddr(0x10), true, 1),
//! ];
//! let profile = BiasProfile::from_source(SliceSource::new(&events));
//! let hints = SelectionScheme::Bias { cutoff: 0.95 }
//!     .select(&profile, None)
//!     .expect("bias scheme needs no accuracy profile");
//! assert_eq!(hints.get(BranchAddr(0x10)), Some(true));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod bias;
pub mod codec;
pub mod database;
pub mod hints;
pub mod interference;
pub mod passes;
pub mod select;

pub use accuracy::AccuracyProfile;
pub use bias::BiasProfile;
pub use database::ProfileDatabase;
pub use hints::HintDatabase;
pub use interference::{
    exposes_indices, history_samples, rank_interference, InterferenceHotspot, InterferenceOptions,
    InterferenceRanking,
};
pub use passes::{AccuracyPass, BiasPass};
pub use select::{SelectError, SelectionScheme};
