//! Binary artifact codecs for the profile types.
//!
//! Implements [`Codec`] for [`BiasProfile`], [`AccuracyProfile`],
//! [`HintDatabase`] and [`ProfileDatabase`], making phase-one outputs
//! storable in the content-addressed artifact store and exchangeable
//! between runs.
//!
//! Encodings are **canonical**: site tables are sorted by branch address
//! before writing, so two structurally equal profiles always serialize to
//! identical bytes (and therefore identical content digests) regardless of
//! `HashMap` iteration order. Payloads validate their counting invariants
//! (`taken ≤ executed`, `correct ≤ executed`) on decode, so a logically
//! impossible profile is rejected as [`CodecError::Invalid`] rather than
//! silently accepted.
//!
//! # Examples
//!
//! ```
//! use sdbp_artifacts::Codec;
//! use sdbp_profiles::BiasProfile;
//! use sdbp_trace::{BranchAddr, SiteStats};
//!
//! let mut p = BiasProfile::new();
//! p.insert(BranchAddr(0x40), SiteStats { executed: 10, taken: 9 });
//! let bytes = p.to_bytes();
//! assert_eq!(BiasProfile::from_bytes(&bytes).unwrap(), p);
//! ```

use crate::accuracy::{AccuracyProfile, SiteAccuracy};
use crate::bias::BiasProfile;
use crate::database::ProfileDatabase;
use crate::hints::HintDatabase;
use sdbp_artifacts::{Codec, CodecError, Decoder, Encoder};
use sdbp_trace::{BranchAddr, SiteStats};

/// Writes a bias profile's payload (shared with [`ProfileDatabase`]'s
/// per-run encoding).
fn encode_bias_payload(profile: &BiasProfile, e: &mut Encoder) {
    let mut sites: Vec<(BranchAddr, &SiteStats)> = profile.iter().collect();
    sites.sort_unstable_by_key(|(pc, _)| *pc);
    e.u64(sites.len() as u64);
    for (pc, stats) in sites {
        e.u64(pc.0);
        e.u64(stats.executed);
        e.u64(stats.taken);
    }
}

fn decode_bias_payload(d: &mut Decoder<'_>) -> Result<BiasProfile, CodecError> {
    let count = d.u64("site count")?;
    let mut profile = BiasProfile::new();
    for _ in 0..count {
        let pc = BranchAddr(d.u64("site pc")?);
        let executed = d.u64("site executed")?;
        let taken = d.u64("site taken")?;
        if taken > executed {
            return Err(CodecError::Invalid {
                context: format!(
                    "site {:x}: taken count {taken} exceeds executed count {executed}",
                    pc.0
                ),
            });
        }
        profile.insert(pc, SiteStats { executed, taken });
    }
    Ok(profile)
}

impl Codec for BiasProfile {
    const SCHEMA: &'static str = "sdbp-bias-profile";
    const VERSION: u32 = 1;

    fn encode_payload(&self, e: &mut Encoder) {
        encode_bias_payload(self, e);
    }

    fn decode_payload(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        decode_bias_payload(d)
    }
}

impl Codec for AccuracyProfile {
    const SCHEMA: &'static str = "sdbp-accuracy-profile";
    const VERSION: u32 = 1;

    fn encode_payload(&self, e: &mut Encoder) {
        let mut sites: Vec<(BranchAddr, &SiteAccuracy)> = self.iter().collect();
        sites.sort_unstable_by_key(|(pc, _)| *pc);
        e.u64(sites.len() as u64);
        for (pc, s) in sites {
            e.u64(pc.0);
            e.u64(s.executed);
            e.u64(s.correct);
            e.u64(s.destructive_collisions);
        }
    }

    fn decode_payload(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let count = d.u64("site count")?;
        let mut profile = AccuracyProfile::new();
        for _ in 0..count {
            let pc = BranchAddr(d.u64("site pc")?);
            let executed = d.u64("site executed")?;
            let correct = d.u64("site correct")?;
            let destructive_collisions = d.u64("site destructive collisions")?;
            if correct > executed || destructive_collisions > executed {
                return Err(CodecError::Invalid {
                    context: format!("site {:x}: counters exceed executed count", pc.0),
                });
            }
            profile.insert(
                pc,
                SiteAccuracy {
                    executed,
                    correct,
                    destructive_collisions,
                },
            );
        }
        Ok(profile)
    }
}

impl Codec for HintDatabase {
    const SCHEMA: &'static str = "sdbp-hints";
    const VERSION: u32 = 1;

    fn encode_payload(&self, e: &mut Encoder) {
        let mut hints: Vec<(BranchAddr, bool)> = self.iter().collect();
        hints.sort_unstable_by_key(|(pc, _)| *pc);
        e.u64(hints.len() as u64);
        for (pc, taken) in hints {
            e.u64(pc.0);
            e.bool(taken);
        }
    }

    fn decode_payload(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let count = d.u64("hint count")?;
        let mut db = HintDatabase::new();
        for _ in 0..count {
            let pc = BranchAddr(d.u64("hint pc")?);
            let taken = d.bool("hint direction")?;
            db.insert(pc, taken);
        }
        Ok(db)
    }
}

impl Codec for ProfileDatabase {
    const SCHEMA: &'static str = "sdbp-profile-db";
    const VERSION: u32 = 1;

    fn encode_payload(&self, e: &mut Encoder) {
        e.str(self.program());
        e.u64(self.num_runs() as u64);
        for (label, profile) in self.iter() {
            e.str(label);
            encode_bias_payload(profile, e);
        }
    }

    fn decode_payload(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let program = d.str("program name")?;
        let runs = d.u64("run count")?;
        let mut db = ProfileDatabase::new(program);
        for _ in 0..runs {
            let label = d.str("run label")?;
            let profile = decode_bias_payload(d)?;
            db.add_run(label, profile);
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn bias_profile(entries: &[(u64, u64, u64)]) -> BiasProfile {
        let mut p = BiasProfile::new();
        for &(pc, executed, taken) in entries {
            p.insert(BranchAddr(pc), SiteStats { executed, taken });
        }
        p
    }

    #[test]
    fn bias_roundtrip_and_canonical_bytes() {
        let p = bias_profile(&[(0x40, 100, 97), (0x10, 3, 0), (0x9000, 1, 1)]);
        let back = BiasProfile::from_bytes(&p.to_bytes()).unwrap();
        assert_eq!(back, p);
        // Insertion order must not leak into the bytes.
        let reordered = bias_profile(&[(0x9000, 1, 1), (0x40, 100, 97), (0x10, 3, 0)]);
        assert_eq!(p.to_bytes(), reordered.to_bytes());
    }

    #[test]
    fn bias_decode_rejects_impossible_counts() {
        // A handmade envelope with taken > executed in the payload.
        struct Evil;
        impl Codec for Evil {
            const SCHEMA: &'static str = "sdbp-bias-profile";
            const VERSION: u32 = 1;
            fn encode_payload(&self, e: &mut Encoder) {
                e.u64(1);
                e.u64(0x40);
                e.u64(1); // executed
                e.u64(2); // taken > executed
            }
            fn decode_payload(_: &mut Decoder<'_>) -> Result<Self, CodecError> {
                Ok(Evil)
            }
        }
        let err = BiasProfile::from_bytes(&Evil.to_bytes()).unwrap_err();
        assert!(matches!(err, CodecError::Invalid { .. }), "{err}");
    }

    #[test]
    fn accuracy_roundtrip() {
        let mut p = AccuracyProfile::new();
        p.insert(
            BranchAddr(0x100),
            SiteAccuracy {
                executed: 50,
                correct: 48,
                destructive_collisions: 3,
            },
        );
        p.insert(
            BranchAddr(0x10),
            SiteAccuracy {
                executed: 9,
                correct: 0,
                destructive_collisions: 9,
            },
        );
        assert_eq!(AccuracyProfile::from_bytes(&p.to_bytes()).unwrap(), p);
    }

    #[test]
    fn hints_roundtrip_preserves_directions() {
        let db: HintDatabase = [
            (BranchAddr(0x30), false),
            (BranchAddr(0x10), true),
            (BranchAddr(0x20), true),
        ]
        .into_iter()
        .collect();
        assert_eq!(HintDatabase::from_bytes(&db.to_bytes()).unwrap(), db);
        assert_eq!(
            HintDatabase::from_bytes(&HintDatabase::new().to_bytes()).unwrap(),
            HintDatabase::new()
        );
    }

    #[test]
    fn profile_database_roundtrip_keeps_runs_in_order() {
        let mut db = ProfileDatabase::new("perl");
        db.add_run("train", bias_profile(&[(0x10, 100, 98)]));
        db.add_run("ref", bias_profile(&[(0x10, 100, 2), (0x20, 7, 7)]));
        let back = ProfileDatabase::from_bytes(&db.to_bytes()).unwrap();
        assert_eq!(back, db);
        let labels: Vec<&str> = back.iter().map(|(l, _)| l).collect();
        assert_eq!(labels, ["train", "ref"]);
    }

    #[test]
    fn schemas_are_distinct() {
        // A hint database must not decode as a bias profile.
        let db: HintDatabase = [(BranchAddr(0x10), true)].into_iter().collect();
        let err = BiasProfile::from_bytes(&db.to_bytes()).unwrap_err();
        assert!(matches!(err, CodecError::SchemaMismatch { .. }), "{err}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn bias_profiles_roundtrip(sites in proptest::collection::vec(
            (any::<u32>(), any::<u32>(), any::<u32>()), 0..32)) {
            let mut p = BiasProfile::new();
            for (pc, executed, taken) in sites {
                let executed = u64::from(executed);
                let taken = u64::from(taken).min(executed);
                p.insert(BranchAddr(u64::from(pc)), SiteStats { executed, taken });
            }
            prop_assert_eq!(BiasProfile::from_bytes(&p.to_bytes()).unwrap(), p);
        }

        #[test]
        fn accuracy_profiles_roundtrip(sites in proptest::collection::vec(
            (any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>()), 0..32)) {
            let mut p = AccuracyProfile::new();
            for (pc, executed, correct, destructive) in sites {
                let executed = u64::from(executed);
                p.insert(BranchAddr(u64::from(pc)), SiteAccuracy {
                    executed,
                    correct: u64::from(correct).min(executed),
                    destructive_collisions: u64::from(destructive).min(executed),
                });
            }
            prop_assert_eq!(AccuracyProfile::from_bytes(&p.to_bytes()).unwrap(), p);
        }

        #[test]
        fn hint_databases_roundtrip(hints in proptest::collection::vec(
            (any::<u32>(), any::<bool>()), 0..48)) {
            let db: HintDatabase = hints
                .into_iter()
                .map(|(pc, taken)| (BranchAddr(u64::from(pc)), taken))
                .collect();
            prop_assert_eq!(HintDatabase::from_bytes(&db.to_bytes()).unwrap(), db);
        }

        #[test]
        fn truncated_profiles_error_not_panic(cut in any::<u32>()) {
            let p = bias_profile(&[(0x10, 5, 3), (0x20, 8, 8), (0x30, 2, 0)]);
            let bytes = p.to_bytes();
            let cut = cut as usize % bytes.len();
            prop_assert!(BiasProfile::from_bytes(&bytes[..cut]).is_err());
        }
    }
}
