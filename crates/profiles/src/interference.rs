//! Static destructive-interference ranking.
//!
//! The paper's central quantity — destructive interference between branches
//! sharing a table entry — is normally measured by simulation. This module
//! *predicts* it from a bias profile alone: it evaluates the predictor's
//! index function (exposed through
//! [`DynamicPredictor::probe_indices`]) over every profiled branch under a
//! sample of global histories, accumulates per-entry taken/not-taken mass,
//! and scores each branch by how much opposing mass it shares entries
//! with. The ranking correlates with the simulator's measured
//! destructive-collision counts (a pinned test cross-checks this).
//!
//! Two consumers share this one implementation: `sdbp check --aliasing`
//! renders the ranking as SDBP040 diagnostics, and the `Static_Collide`
//! selection scheme ([`SelectionScheme::Collide`]) turns it into static
//! hints — the paper's §5 future-work idea of selecting by *interference*
//! rather than by bias or accuracy, closed into a real scheme.
//!
//! For *linear* predictors — those emitting a symbolic
//! [`DynamicPredictor::index_spec`] — the sampling is bypassed entirely:
//! `sdbp_index_analysis::exact_interference` computes the same ranking in
//! closed form from the index function's GF(2) coset structure, bitwise
//! identical on exhaustively enumerable histories (a pinned test) and
//! exact (rather than 256-sample approximate) beyond them.
//!
//! [`SelectionScheme::Collide`]: crate::SelectionScheme::Collide

use crate::bias::BiasProfile;
use sdbp_index_analysis::exact_interference;
use sdbp_predictors::{DynamicPredictor, PredictorConfig};
use sdbp_trace::BranchAddr;
use std::collections::HashMap;

/// Tuning knobs for [`rank_interference`].
#[derive(Debug, Clone, Copy)]
pub struct InterferenceOptions {
    /// Histories are enumerated exhaustively up to `2^exhaustive_bits`;
    /// longer histories are sampled.
    pub exhaustive_bits: u32,
    /// Number of sampled history values for long histories.
    pub history_samples: usize,
}

impl Default for InterferenceOptions {
    fn default() -> Self {
        Self {
            exhaustive_bits: 10,
            history_samples: 256,
        }
    }
}

/// One branch's predicted interference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterferenceHotspot {
    /// The branch.
    pub pc: BranchAddr,
    /// Predicted destructive-interference mass (executions expected to meet
    /// an entry trained the opposite way by *other* branches).
    pub score: f64,
    /// Profiled execution count.
    pub executed: u64,
}

/// The analyzer's output: branches ranked by predicted destruction.
#[derive(Debug, Clone)]
pub struct InterferenceRanking {
    /// Branches ranked by descending predicted destructive interference
    /// (ties broken by address). Zero-score branches are omitted.
    pub hotspots: Vec<InterferenceHotspot>,
    /// Sum of all hotspot scores.
    pub total_score: f64,
    /// Distinct `(bank, entry)` cells touched.
    pub cells_touched: usize,
    /// Profiled branches analyzed.
    pub branches: usize,
}

impl InterferenceRanking {
    /// The predicted destructive score of one branch; `0.0` when the branch
    /// scored zero (or was never profiled).
    pub fn score_of(&self, pc: BranchAddr) -> f64 {
        self.hotspots
            .iter()
            .find(|h| h.pc == pc)
            .map_or(0.0, |h| h.score)
    }
}

/// `splitmix64`, the standard 64-bit mix — deterministic history sampling
/// without an RNG dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The deterministic history sample the analyzer evaluates each branch
/// under: exhaustive enumeration up to `options.exhaustive_bits`, a fixed
/// splitmix64 sample (sorted, deduplicated) beyond it.
pub fn history_samples(bits: u32, options: &InterferenceOptions) -> Vec<u64> {
    if bits == 0 {
        return vec![0];
    }
    if bits <= options.exhaustive_bits {
        return (0..(1u64 << bits)).collect();
    }
    let mask = if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    let mut state = 0x5db9_d00d_2000_u64; // fixed seed: analysis is deterministic
    let mut samples: Vec<u64> = (0..options.history_samples)
        .map(|_| splitmix64(&mut state) & mask)
        .collect();
    samples.sort_unstable();
    samples.dedup();
    samples
}

/// Whether `config`'s scheme exposes its index function to static analysis
/// — i.e. whether [`rank_interference`] can return a ranking for it. The
/// chooser-based hybrids (bi-mode, 2bcgskew, yags, agree, tournament) and
/// the per-branch-history local predictor do not; everything indexed by
/// pure `(pc, history)` functions does. A thin convenience over the one
/// capability source, [`PredictorConfig::index_capability`].
pub fn exposes_indices(config: PredictorConfig) -> bool {
    config.index_capability().is_analyzable()
}

/// Statically ranks destructive interference of `config` on the branches in
/// `profile`.
///
/// Returns `None` when the scheme does not expose its index function
/// ([`DynamicPredictor::probe_indices`] returns `false`).
///
/// The model: every profiled branch deposits its per-history share of
/// taken/not-taken mass into each `(bank, entry)` cell its index function
/// can reach; a branch's destructive score is its mass in a cell times the
/// fraction of that cell's mass trained the opposite way by *other*
/// branches. Self-interference (a mixed branch fighting itself) is
/// excluded — that is mispredictability, not aliasing.
///
/// # Examples
///
/// ```
/// use sdbp_predictors::{PredictorConfig, PredictorKind};
/// use sdbp_profiles::{rank_interference, BiasProfile, InterferenceOptions};
/// use sdbp_trace::{BranchAddr, SiteStats};
///
/// // Two opposing branches sharing one entry of a 256-entry bimodal table.
/// let mut profile = BiasProfile::new();
/// profile.insert(BranchAddr(0x1000), SiteStats { executed: 100, taken: 100 });
/// profile.insert(BranchAddr(0x1000 + 256 * 4), SiteStats { executed: 100, taken: 0 });
/// let config = PredictorConfig::new(PredictorKind::Bimodal, 64).unwrap();
/// let ranking = rank_interference(&profile, config, &InterferenceOptions::default()).unwrap();
/// assert_eq!(ranking.hotspots.len(), 2);
/// ```
pub fn rank_interference(
    profile: &BiasProfile,
    config: PredictorConfig,
    options: &InterferenceOptions,
) -> Option<InterferenceRanking> {
    let predictor = config.build();
    // Deterministic order: HashMap iteration must not leak into float sums.
    let mut branches: Vec<(BranchAddr, u64, u64)> = profile
        .iter()
        .filter(|(_, stats)| stats.executed > 0)
        .map(|(pc, stats)| (pc, stats.executed, stats.taken))
        .collect();
    branches.sort_unstable_by_key(|(pc, _, _)| *pc);
    if branches.is_empty() {
        return Some(InterferenceRanking {
            hotspots: Vec::new(),
            total_score: 0.0,
            cells_touched: 0,
            branches: 0,
        });
    }

    // Exact fast path: linear predictors prove the ranking from the index
    // function's coset structure — no history enumeration, no probing.
    // Bitwise identical to the sampled path on exhaustive histories (the
    // `exact_path_is_bitwise_identical_to_sampling` test); exact where
    // sampling would approximate beyond them.
    if let Some(spec) = predictor.index_spec() {
        let exact = exact_interference(&branches, &spec, options.exhaustive_bits);
        return Some(InterferenceRanking {
            hotspots: exact
                .hotspots
                .into_iter()
                .map(|h| InterferenceHotspot {
                    pc: h.pc,
                    score: h.score,
                    executed: h.executed,
                })
                .collect(),
            total_score: exact.total_score,
            cells_touched: exact.cells_touched,
            branches: exact.branches,
        });
    }

    rank_sampled(&*predictor, &branches, options)
}

/// The sampling fallback for non-linear (but probeable) predictors:
/// evaluates `probe_indices` over the deterministic history sample.
fn rank_sampled(
    predictor: &dyn DynamicPredictor,
    branches: &[(BranchAddr, u64, u64)],
    options: &InterferenceOptions,
) -> Option<InterferenceRanking> {
    let mut scratch = Vec::new();
    // Probe support check on the first branch.
    scratch.clear();
    if !predictor.probe_indices(branches[0].0, 0, &mut scratch) {
        return None;
    }
    let histories = history_samples(DynamicPredictor::history_bits(predictor), options);
    let per_history = 1.0 / histories.len() as f64;

    // Pass 1: accumulate (taken, not-taken) mass per cell.
    let mut cells: HashMap<(u32, u64), [f64; 2]> = HashMap::new();
    for &(pc, executed, taken) in branches {
        let taken_mass = taken as f64 * per_history;
        let nt_mass = (executed - taken) as f64 * per_history;
        for &history in &histories {
            scratch.clear();
            predictor.probe_indices(pc, history, &mut scratch);
            for &(bank, index) in &scratch {
                let cell = cells.entry((bank, index)).or_default();
                cell[0] += taken_mass;
                cell[1] += nt_mass;
            }
        }
    }

    // Pass 2: per-branch destructive mass against the other branches.
    let mut hotspots = Vec::with_capacity(branches.len());
    let mut total_score = 0.0;
    for &(pc, executed, taken) in branches {
        let own = [
            taken as f64 * per_history,
            (executed - taken) as f64 * per_history,
        ];
        let mut score = 0.0;
        for &history in &histories {
            scratch.clear();
            predictor.probe_indices(pc, history, &mut scratch);
            for &(bank, index) in &scratch {
                let cell = cells[&(bank, index)];
                let total = cell[0] + cell[1];
                if total <= 0.0 {
                    continue;
                }
                for dir in 0..2 {
                    let opposing = (cell[1 - dir] - own[1 - dir]).max(0.0);
                    score += own[dir] * opposing / total;
                }
            }
        }
        if score > 0.0 {
            total_score += score;
            hotspots.push(InterferenceHotspot {
                pc,
                score,
                executed,
            });
        }
    }
    hotspots.sort_unstable_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.pc.cmp(&b.pc))
    });
    Some(InterferenceRanking {
        hotspots,
        total_score,
        cells_touched: cells.len(),
        branches: branches.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbp_predictors::PredictorKind;
    use sdbp_trace::SiteStats;

    fn profile_of(sites: &[(u64, u64, u64)]) -> BiasProfile {
        let mut profile = BiasProfile::new();
        for &(pc, executed, taken) in sites {
            profile.insert(BranchAddr(pc), SiteStats { executed, taken });
        }
        profile
    }

    fn config(kind: PredictorKind, size: usize) -> PredictorConfig {
        PredictorConfig::new(kind, size).unwrap()
    }

    #[test]
    fn history_sampling_enumerates_short_and_samples_long() {
        let options = InterferenceOptions::default();
        assert_eq!(history_samples(0, &options), vec![0]);
        assert_eq!(history_samples(3, &options).len(), 8);
        let long = history_samples(20, &options);
        assert!(long.len() > 200 && long.len() <= 256, "{}", long.len());
        assert!(long.iter().all(|h| *h < (1 << 20)));
    }

    #[test]
    fn transparency_classification() {
        for (kind, transparent) in [
            (PredictorKind::Bimodal, true),
            (PredictorKind::Gshare, true),
            (PredictorKind::Gselect, true),
            (PredictorKind::EGskew, true),
            (PredictorKind::Perceptron, true),
            (PredictorKind::TageLite, true),
            (PredictorKind::BiMode, false),
            (PredictorKind::TwoBcGskew, false),
            (PredictorKind::Agree, false),
            (PredictorKind::Local, false),
        ] {
            assert_eq!(exposes_indices(config(kind, 4096)), transparent, "{kind}");
        }
    }

    #[test]
    fn score_of_reads_the_ranking() {
        let stride = 256u64 * 4;
        let profile = profile_of(&[(0x1000, 1000, 1000), (0x1000 + stride, 1000, 0)]);
        let ranking = rank_interference(
            &profile,
            config(PredictorKind::Bimodal, 64),
            &InterferenceOptions::default(),
        )
        .unwrap();
        assert!((ranking.score_of(BranchAddr(0x1000)) - 500.0).abs() < 1e-6);
        assert_eq!(ranking.score_of(BranchAddr(0x9999)), 0.0);
    }

    #[test]
    fn exact_path_is_bitwise_identical_to_sampling() {
        // Every linear predictor with an exhaustively enumerable history
        // (history_bits ≤ exhaustive_bits) must produce the *same floats*
        // through the exact GF(2) path as through live probing — not
        // approximately equal: bit for bit.
        let profile = profile_of(&[
            (0x1000, 1000, 1000),
            (0x1000 + 256 * 4, 1000, 0), // congruent with the first (64B tables)
            (0x1000 + 64 * 4, 750, 400), // mixed bias, nearby
            (0x2004, 333, 100),
            (0x2004 + 1024 * 4, 512, 512), // congruent at 256-entry tables
            (0x9e3c, 1, 1),
        ]);
        let options = InterferenceOptions::default();
        for (kind, size) in [
            (PredictorKind::Bimodal, 64),
            (PredictorKind::Ghist, 64),
            (PredictorKind::Gshare, 64),
            (PredictorKind::Gselect, 256),
            (PredictorKind::EGskew, 256),
        ] {
            let cfg = config(kind, size);
            let predictor = cfg.build();
            assert!(
                DynamicPredictor::history_bits(&*predictor) <= options.exhaustive_bits,
                "{kind}: test requires exhaustive enumeration"
            );
            let mut branches: Vec<(BranchAddr, u64, u64)> = profile
                .iter()
                .map(|(pc, stats)| (pc, stats.executed, stats.taken))
                .collect();
            branches.sort_unstable_by_key(|(pc, _, _)| *pc);
            let exact = rank_interference(&profile, cfg, &options).unwrap();
            let sampled = rank_sampled(&*predictor, &branches, &options).unwrap();
            assert!(!exact.hotspots.is_empty(), "{kind}: profile must interfere");
            assert_eq!(exact.hotspots, sampled.hotspots, "{kind}");
            assert_eq!(
                exact.total_score.to_bits(),
                sampled.total_score.to_bits(),
                "{kind}: total {} vs {}",
                exact.total_score,
                sampled.total_score
            );
            assert_eq!(exact.cells_touched, sampled.cells_touched, "{kind}");
            assert_eq!(exact.branches, sampled.branches, "{kind}");
        }
    }

    #[test]
    fn frontier_predictors_are_analyzable() {
        // The perceptron (history-free index) and TAGE-lite (four banks)
        // both expose their index functions; opposing congruent branches
        // must score in each.
        let profile = profile_of(&[(0x1000, 1000, 1000), (0x1000 + (1 << 20), 1000, 0)]);
        for kind in [PredictorKind::Perceptron, PredictorKind::TageLite] {
            let ranking =
                rank_interference(&profile, config(kind, 256), &InterferenceOptions::default())
                    .unwrap();
            assert_eq!(ranking.branches, 2, "{kind}");
            assert!(!ranking.hotspots.is_empty(), "{kind}");
        }
    }
}
