//! Per-branch bias profiles.

use sdbp_trace::{BranchAddr, BranchEvent, BranchSource, SiteStats};
use std::collections::HashMap;

/// Execution/taken counts per static branch, gathered from one or more runs.
///
/// This is the raw material of every static selection scheme: the paper's
/// *bias* of a branch (`max(taken-rate, 1 - taken-rate)`) and its majority
/// direction both come from here.
///
/// # Examples
///
/// ```
/// use sdbp_profiles::BiasProfile;
/// use sdbp_trace::{BranchAddr, BranchEvent, SliceSource};
///
/// let events = [
///     BranchEvent::new(BranchAddr(0x40), true, 0),
///     BranchEvent::new(BranchAddr(0x40), false, 0),
///     BranchEvent::new(BranchAddr(0x40), true, 0),
/// ];
/// let p = BiasProfile::from_source(SliceSource::new(&events));
/// let site = p.site(BranchAddr(0x40)).unwrap();
/// assert_eq!(site.executed, 3);
/// assert!(site.majority_taken());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BiasProfile {
    sites: HashMap<BranchAddr, SiteStats>,
}

impl BiasProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one branch execution.
    pub fn record(&mut self, event: &BranchEvent) {
        let s = self.sites.entry(event.pc).or_default();
        s.executed += 1;
        s.taken += u64::from(event.taken);
    }

    /// Profiles an entire source.
    pub fn from_source<S: BranchSource>(source: S) -> Self {
        let mut pass = crate::passes::BiasPass::new();
        sdbp_passes::PassRunner::new().run(source, &mut [&mut pass]);
        pass.into_profile()
    }

    /// Per-site counts, if the branch was observed.
    pub fn site(&self, pc: BranchAddr) -> Option<&SiteStats> {
        self.sites.get(&pc)
    }

    /// Number of distinct branches observed.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Iterates over `(pc, stats)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (BranchAddr, &SiteStats)> {
        self.sites.iter().map(|(pc, s)| (*pc, s))
    }

    /// Total dynamic branch executions observed.
    pub fn total_executions(&self) -> u64 {
        self.sites.values().map(|s| s.executed).sum()
    }

    /// Merges another profile's counts into this one (the Spike database
    /// accumulate operation).
    pub fn merge(&mut self, other: &BiasProfile) {
        for (pc, stats) in other.iter() {
            self.sites.entry(pc).or_default().merge(stats);
        }
    }

    /// Inserts or replaces the counts of one site (used by the database's
    /// filtering operations and by tests).
    pub fn insert(&mut self, pc: BranchAddr, stats: SiteStats) {
        self.sites.insert(pc, stats);
    }

    /// Removes a site, returning its counts.
    pub fn remove(&mut self, pc: BranchAddr) -> Option<SiteStats> {
        self.sites.remove(&pc)
    }

    /// Serializes to the text format `"<hex pc> <executed> <taken>"` per
    /// line, sorted by address (the on-disk profile-database format used by
    /// the CLI).
    pub fn to_text(&self) -> String {
        let mut entries: Vec<(BranchAddr, &SiteStats)> = self.iter().collect();
        entries.sort_unstable_by_key(|(pc, _)| *pc);
        let mut out = String::new();
        for (pc, stats) in entries {
            out.push_str(&format!("{:x} {} {}\n", pc.0, stats.executed, stats.taken));
        }
        out
    }

    /// Parses the format written by [`BiasProfile::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut profile = Self::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let pc = parts
                .next()
                .and_then(|p| u64::from_str_radix(p.trim_start_matches("0x"), 16).ok())
                .ok_or_else(|| format!("line {}: bad pc", idx + 1))?;
            let executed = parts
                .next()
                .and_then(|p| p.parse::<u64>().ok())
                .ok_or_else(|| format!("line {}: bad executed count", idx + 1))?;
            let taken = parts
                .next()
                .and_then(|p| p.parse::<u64>().ok())
                .ok_or_else(|| format!("line {}: bad taken count", idx + 1))?;
            if taken > executed {
                return Err(format!("line {}: taken exceeds executed", idx + 1));
            }
            profile.insert(BranchAddr(pc), SiteStats { executed, taken });
        }
        Ok(profile)
    }
}

impl Extend<BranchEvent> for BiasProfile {
    fn extend<T: IntoIterator<Item = BranchEvent>>(&mut self, iter: T) {
        for e in iter {
            self.record(&e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbp_trace::SliceSource;

    fn ev(pc: u64, taken: bool) -> BranchEvent {
        BranchEvent::new(BranchAddr(pc), taken, 0)
    }

    #[test]
    fn records_counts_per_site() {
        let mut p = BiasProfile::new();
        p.extend([ev(0x10, true), ev(0x10, false), ev(0x20, true)]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.total_executions(), 3);
        let s = p.site(BranchAddr(0x10)).unwrap();
        assert_eq!((s.executed, s.taken), (2, 1));
        assert!(p.site(BranchAddr(0x30)).is_none());
    }

    #[test]
    fn from_source_equals_manual_recording() {
        let events = [ev(0x10, true), ev(0x14, false)];
        let a = BiasProfile::from_source(SliceSource::new(&events));
        let mut b = BiasProfile::new();
        b.extend(events);
        assert_eq!(a, b);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = BiasProfile::new();
        a.extend([ev(0x10, true), ev(0x20, false)]);
        let mut b = BiasProfile::new();
        b.extend([ev(0x10, false), ev(0x30, true)]);
        a.merge(&b);
        assert_eq!(a.len(), 3);
        let s = a.site(BranchAddr(0x10)).unwrap();
        assert_eq!((s.executed, s.taken), (2, 1));
    }

    #[test]
    fn bias_definition_via_sitestats() {
        let mut p = BiasProfile::new();
        for _ in 0..97 {
            p.record(&ev(0x10, true));
        }
        for _ in 0..3 {
            p.record(&ev(0x10, false));
        }
        let s = p.site(BranchAddr(0x10)).unwrap();
        assert!((s.bias() - 0.97).abs() < 1e-12);
        assert!(s.majority_taken());
    }

    #[test]
    fn text_roundtrip() {
        let mut p = BiasProfile::new();
        p.insert(
            BranchAddr(0x200),
            SiteStats {
                executed: 10,
                taken: 9,
            },
        );
        p.insert(
            BranchAddr(0x10),
            SiteStats {
                executed: 3,
                taken: 0,
            },
        );
        let text = p.to_text();
        assert_eq!(text.lines().next().unwrap(), "10 3 0", "sorted by pc");
        let back = BiasProfile::from_text(&text).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(BiasProfile::from_text("zz 1 1\n").is_err());
        assert!(BiasProfile::from_text("10 x 1\n").is_err());
        assert!(BiasProfile::from_text("10 1\n").is_err());
        assert!(
            BiasProfile::from_text("10 1 2\n").is_err(),
            "taken > executed"
        );
        assert!(BiasProfile::from_text("# just a comment\n")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn insert_and_remove() {
        let mut p = BiasProfile::new();
        p.insert(
            BranchAddr(0x99),
            SiteStats {
                executed: 10,
                taken: 1,
            },
        );
        assert_eq!(p.len(), 1);
        let removed = p.remove(BranchAddr(0x99)).unwrap();
        assert_eq!(removed.executed, 10);
        assert!(p.is_empty());
    }
}
