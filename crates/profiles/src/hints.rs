//! The static-hint database.

use sdbp_trace::BranchAddr;
use std::collections::HashMap;
use std::fmt;

/// The set of branches selected for static prediction, with their hints.
///
/// This models the two hint bits the paper assumes in the ISA (after the
/// IA-64 encoding): membership in the database is the "use static
/// prediction" meta-bit, and the stored boolean is the predicted direction.
/// In a deployment these bits would be rewritten into the binary by an
/// executable optimizer such as Spike.
///
/// # Examples
///
/// ```
/// use sdbp_profiles::HintDatabase;
/// use sdbp_trace::BranchAddr;
///
/// let mut db = HintDatabase::new();
/// db.insert(BranchAddr(0x100), true);
/// assert_eq!(db.get(BranchAddr(0x100)), Some(true));
/// assert_eq!(db.get(BranchAddr(0x104)), None, "not statically predicted");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HintDatabase {
    hints: HashMap<BranchAddr, bool>,
}

impl HintDatabase {
    /// Creates an empty database (pure dynamic prediction).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the static hint of a branch, returning any previous hint.
    pub fn insert(&mut self, pc: BranchAddr, taken: bool) -> Option<bool> {
        self.hints.insert(pc, taken)
    }

    /// The hint of a branch: `Some(direction)` when statically predicted.
    pub fn get(&self, pc: BranchAddr) -> Option<bool> {
        self.hints.get(&pc).copied()
    }

    /// Whether the branch is statically predicted.
    pub fn contains(&self, pc: BranchAddr) -> bool {
        self.hints.contains_key(&pc)
    }

    /// Removes a branch's hint.
    pub fn remove(&mut self, pc: BranchAddr) -> Option<bool> {
        self.hints.remove(&pc)
    }

    /// Number of statically predicted branches.
    pub fn len(&self) -> usize {
        self.hints.len()
    }

    /// Whether no branch is statically predicted.
    pub fn is_empty(&self) -> bool {
        self.hints.is_empty()
    }

    /// Iterates over `(pc, hint)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (BranchAddr, bool)> + '_ {
        self.hints.iter().map(|(pc, t)| (*pc, *t))
    }

    /// Keeps only hints for which `keep` returns `true` (the database-side
    /// primitive behind cross-training filters).
    pub fn retain<F: FnMut(BranchAddr, bool) -> bool>(&mut self, mut keep: F) {
        self.hints.retain(|pc, taken| keep(*pc, *taken));
    }

    /// Serializes to the text format `"<hex pc> T|N"` per line, sorted by
    /// address (stable for diffing databases between runs).
    pub fn to_text(&self) -> String {
        let mut entries: Vec<(BranchAddr, bool)> = self.iter().collect();
        entries.sort_unstable_by_key(|(pc, _)| *pc);
        let mut out = String::new();
        for (pc, taken) in entries {
            out.push_str(&format!("{:x} {}\n", pc.0, if taken { 'T' } else { 'N' }));
        }
        out
    }

    /// Parses the format written by [`HintDatabase::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut db = Self::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let pc = parts
                .next()
                .and_then(|p| u64::from_str_radix(p.trim_start_matches("0x"), 16).ok())
                .ok_or_else(|| format!("line {}: bad pc", idx + 1))?;
            let taken = match parts.next() {
                Some("T") | Some("t") => true,
                Some("N") | Some("n") => false,
                _ => return Err(format!("line {}: bad hint", idx + 1)),
            };
            db.insert(BranchAddr(pc), taken);
        }
        Ok(db)
    }
}

impl fmt::Display for HintDatabase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} static hints", self.hints.len())
    }
}

impl FromIterator<(BranchAddr, bool)> for HintDatabase {
    fn from_iter<T: IntoIterator<Item = (BranchAddr, bool)>>(iter: T) -> Self {
        let mut db = Self::new();
        for (pc, taken) in iter {
            db.insert(pc, taken);
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut db = HintDatabase::new();
        assert!(db.is_empty());
        assert_eq!(db.insert(BranchAddr(0x10), true), None);
        assert_eq!(db.insert(BranchAddr(0x10), false), Some(true));
        assert_eq!(db.get(BranchAddr(0x10)), Some(false));
        assert!(db.contains(BranchAddr(0x10)));
        assert_eq!(db.remove(BranchAddr(0x10)), Some(false));
        assert!(db.is_empty());
    }

    #[test]
    fn retain_filters() {
        let mut db: HintDatabase = [
            (BranchAddr(0x10), true),
            (BranchAddr(0x20), false),
            (BranchAddr(0x30), true),
        ]
        .into_iter()
        .collect();
        db.retain(|_, taken| taken);
        assert_eq!(db.len(), 2);
        assert!(!db.contains(BranchAddr(0x20)));
    }

    #[test]
    fn text_roundtrip_is_sorted_and_stable() {
        let db: HintDatabase = [(BranchAddr(0x200), false), (BranchAddr(0x10), true)]
            .into_iter()
            .collect();
        let text = db.to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines, ["10 T", "200 N"]);
        let back = HintDatabase::from_text(&text).unwrap();
        assert_eq!(back, db);
    }

    #[test]
    fn from_text_tolerates_comments_and_rejects_garbage() {
        let db = HintDatabase::from_text("# hints\n\n10 T\n").unwrap();
        assert_eq!(db.len(), 1);
        assert!(HintDatabase::from_text("zz T\n").is_err());
        assert!(HintDatabase::from_text("10 X\n").is_err());
        assert!(HintDatabase::from_text("10\n").is_err());
    }

    #[test]
    fn display_reports_count() {
        let db: HintDatabase = [(BranchAddr(0x10), true)].into_iter().collect();
        assert_eq!(db.to_string(), "1 static hints");
    }
}
