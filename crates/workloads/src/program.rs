//! Materialized program models: sites, chains, and their construction.

use crate::behavior::BranchBehavior;
use crate::spec::{InputSet, WorkloadSpec};
use sdbp_trace::BranchAddr;
use sdbp_util::dist::{Alias, Normal, Zipf};
use sdbp_util::rng::{Rng, Xoshiro256StarStar};

/// One static branch site of a materialized program.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteModel {
    /// The branch instruction address.
    pub pc: BranchAddr,
    /// The behavior generating its outcomes.
    pub behavior: BranchBehavior,
    /// Non-branch instructions preceding the branch (its basic block body).
    pub gap: u32,
}

/// How many times a chain's body repeats per activation.
///
/// The split matters for the paper's phenomenology: straight-line chains
/// give their back-edge a perfect (always not-taken) bias; fixed-trip loops
/// give history predictors a deterministic exit to learn; geometric loops
/// leave only the bias.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IterModel {
    /// Non-loop code: exactly one pass, back-edge never taken.
    Straight,
    /// A counted loop with a constant trip count.
    Fixed(u32),
    /// A data-dependent loop: geometric trip count with the given mean.
    Geometric(f64),
}

/// A chain: an ordered run of sites ending in a loop back-edge —
/// the synthetic analogue of a loop body or hot straight-line function.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainModel {
    /// Indices into [`ProgramModel::sites`], executed in order; the last one
    /// is the back-edge.
    pub sites: Vec<usize>,
    /// The trip-count model.
    pub iter_model: IterModel,
    /// Number of hidden activation variants (input-data equivalence classes
    /// that drive the latch vector of the chain's biased sites).
    pub variants: u32,
    /// Relative execution weight (0 = never runs under this input).
    pub weight: f64,
}

impl ChainModel {
    /// Samples an activation variant: low ids dominate geometrically, the
    /// way a few input-data classes dominate a real loop's behavior.
    pub fn sample_variant<R: Rng>(&self, rng: &mut R) -> u32 {
        let mut v = 0;
        while v + 1 < self.variants && rng.bernoulli(0.55) {
            v += 1;
        }
        v
    }

    /// Samples an iteration count (≥ 1) for one activation of the chain.
    pub fn sample_iters<R: Rng>(&self, rng: &mut R) -> u32 {
        match self.iter_model {
            IterModel::Straight => 1,
            IterModel::Fixed(n) => n.max(1),
            IterModel::Geometric(mean) => {
                // Geometric with mean m: continue with probability 1 - 1/m.
                let cont = 1.0 - 1.0 / mean.max(1.0);
                let mut iters = 1u32;
                while iters < 10_000 && rng.bernoulli(cont) {
                    iters += 1;
                }
                iters
            }
        }
    }
}

/// A fully materialized synthetic program for one input set.
///
/// Deterministic in `(spec, input, seed)`. `Train` and `Ref` models of the
/// same seed share site addresses and chain structure; they differ in the
/// behavioral perturbation and in which input-dependent chains are live.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramModel {
    name: String,
    input: InputSet,
    sites: Vec<SiteModel>,
    chains: Vec<ChainModel>,
    chain_alias: Alias,
    /// Per-chain successor sets: control flow is a first-order Markov walk
    /// over a sparse chain graph, so chain *sequences* (and therefore global
    /// history contexts) recur the way real call/loop structure makes them
    /// recur. `None` for chains that are dead under this input.
    successors: Vec<Option<SuccessorSet>>,
}

/// A chain's possible successors with their transition distribution.
#[derive(Debug, Clone, PartialEq)]
struct SuccessorSet {
    targets: Vec<usize>,
    alias: Alias,
}

impl ProgramModel {
    /// Builds the model for `spec` under `input` from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the spec's mixture is invalid or `static_sites < 8`.
    pub fn materialize(spec: &WorkloadSpec, input: InputSet, seed: u64) -> Self {
        assert!(spec.mixture.is_valid(), "invalid mixture for {}", spec.name);
        assert!(spec.static_sites >= 8, "need at least 8 sites");

        // Sub-stream 0: structure (shared between inputs).
        let base = Xoshiro256StarStar::seed_from_u64(seed ^ 0x5d_b0_4b_5a);
        let mut structure_rng = base.substream(0);
        // Sub-stream 3: ref perturbation decisions.
        let mut perturb_rng = base.substream(3);

        let mixture_alias = Alias::new(&spec.mixture.weights()).expect("mixture validated above");
        // The static code layout is input-invariant (computed from the Train
        // CBR target); only the *dynamic* gap emitted in events follows the
        // per-input CBR target — different inputs retire different amounts
        // of straight-line code around the same branches.
        let layout_gap = ((1000.0 / spec.cbrs_per_ki_train) - 1.0).max(0.0);
        let base_gap = ((1000.0 / spec.cbrs_per_ki(input)) - 1.0).max(0.0);

        // 1. Carve sites into chains: micro-loops of 1-2 branches and
        //    macro chains of 3..=12.
        let mut chains_sites: Vec<Vec<usize>> = Vec::new();
        let mut is_micro: Vec<bool> = Vec::new();
        let mut next_site = 0usize;
        while next_site < spec.static_sites {
            let micro = structure_rng.bernoulli(spec.micro_chains);
            let len = if micro {
                1 + structure_rng.range(2) as usize
            } else {
                3 + structure_rng.range(10) as usize
            };
            let len = len.min(spec.static_sites - next_site).max(1);
            chains_sites.push((next_site..next_site + len).collect());
            is_micro.push(micro);
            next_site += len;
        }
        let num_chains = chains_sites.len();

        // 2. Assign chain addresses and site models.
        let mut sites: Vec<SiteModel> = Vec::with_capacity(spec.static_sites);
        let mut chain_base = 0x1_0000u64;
        for chain in &chains_sites {
            let mut pc = chain_base;
            for (pos, &site_idx) in chain.iter().enumerate() {
                debug_assert_eq!(site_idx, sites.len());
                let is_backedge = pos == chain.len() - 1;
                let behavior = if is_backedge {
                    BranchBehavior::LoopBack
                } else {
                    sample_behavior(
                        &mixture_alias,
                        spec.biased_stickiness,
                        spec.latch_noise,
                        &mut structure_rng,
                    )
                };
                // Basic-block length: the workload's CBR target with mild
                // per-site texture. One jitter draw feeds both the static
                // layout and the dynamic gap so the structure stream stays
                // input-invariant.
                let jitter = structure_rng.range(5) as i64 - 2;
                let layout = (layout_gap as i64 + jitter).max(0) as u64;
                let gap = (base_gap.round() as i64 + jitter).max(0) as u32;
                // Branches sit at the end of their block.
                pc += (layout + 1) * 4;
                sites.push(SiteModel {
                    pc: BranchAddr(pc),
                    behavior,
                    gap,
                });
            }
            // Chains are spread across the text segment like functions
            // (word-aligned starts).
            chain_base += 0x400 + structure_rng.range(0x200) * 4;
            chain_base = chain_base.max(pc + 4);
        }

        // 3. Chain weights. Chains are clustered into groups of ~24 (call
        //    neighborhoods); group hotness is Zipf over groups and member
        //    hotness is Zipf within the group. The two-level structure keeps
        //    hot code concentrated (aliasing pressure) while letting the
        //    successor graph below stay group-local (bounded in-degree, so
        //    history contexts at chain entry actually recur).
        const GROUP_SIZE: usize = 24;
        let num_groups = num_chains.div_ceil(GROUP_SIZE);
        let group_zipf = Zipf::new(num_groups, spec.zipf_exponent).expect("validated parameters");
        let mut group_ranks: Vec<usize> = (0..num_groups).collect();
        structure_rng.shuffle(&mut group_ranks);
        let member_zipf = Zipf::new(GROUP_SIZE, 0.6).expect("validated parameters");
        let mut member_ranks: Vec<usize> = (0..GROUP_SIZE).collect();
        structure_rng.shuffle(&mut member_ranks);
        let zipf_weight = |c: usize| {
            let group = c / GROUP_SIZE;
            let member = c % GROUP_SIZE;
            group_zipf.pmf(group_ranks[group]) * member_zipf.pmf(member_ranks[member])
        };
        let mut chains: Vec<ChainModel> = Vec::with_capacity(num_chains);
        for (c, sites_of_chain) in chains_sites.into_iter().enumerate() {
            let iter_model = if is_micro[c] {
                // Micro-loops always loop, with small, mostly fixed trip
                // counts whose full period fits in a history window.
                if structure_rng.bernoulli(0.8) {
                    IterModel::Fixed(2 + structure_rng.range(8) as u32)
                } else {
                    IterModel::Geometric(2.0 + structure_rng.next_f64() * 4.0)
                }
            } else if structure_rng.bernoulli(spec.straight_chains) {
                IterModel::Straight
            } else {
                // Looping chain: trip counts centered on mean_iterations.
                let m = spec.mean_iterations.max(2.0);
                if structure_rng.bernoulli(spec.fixed_iter_chains) {
                    let lo = (m * 0.5).max(2.0) as u64;
                    let hi = (m * 1.5).max(lo as f64 + 1.0) as u64;
                    IterModel::Fixed(structure_rng.range_inclusive(lo, hi) as u32)
                } else {
                    IterModel::Geometric(2.0 + structure_rng.next_f64() * (m - 2.0).max(0.0))
                }
            };
            // Input-dependent liveness (uses the *perturbation* stream so
            // the structure stream stays input-invariant).
            let r = perturb_rng.next_f64();
            let p = &spec.perturbation;
            let live = if r < p.ref_only_chains {
                input == InputSet::Ref
            } else if r < p.ref_only_chains + p.train_only_chains {
                input == InputSet::Train
            } else {
                true
            };
            let weight = if live { zipf_weight(c) } else { 0.0 };
            chains.push(ChainModel {
                sites: sites_of_chain,
                iter_model,
                variants: 2 + structure_rng.range(3) as u32,
                weight,
            });
        }

        // 4. Ref-input behavioral perturbation of biased sites.
        if input == InputSet::Ref {
            let drift = Normal::new(0.0, spec.perturbation.drift_sd).expect("validated parameters");
            for site in &mut sites {
                match &mut site.behavior {
                    BranchBehavior::Biased { p_taken, .. } => {
                        if perturb_rng.bernoulli(spec.perturbation.flip_fraction) {
                            *p_taken = 1.0 - *p_taken;
                        } else if spec.perturbation.drift_sd > 0.0 {
                            *p_taken =
                                (*p_taken + drift.sample(&mut perturb_rng)).clamp(0.001, 0.999);
                        }
                    }
                    BranchBehavior::Correlated { invert, .. } => {
                        if perturb_rng.bernoulli(spec.perturbation.flip_fraction) {
                            *invert = !*invert;
                        }
                    }
                    _ => {
                        // Deterministic local behaviors are input-invariant;
                        // consume one draw to keep streams aligned across
                        // behavior kinds.
                        let _ = perturb_rng.next_u64();
                    }
                }
            }
        }

        let weights: Vec<f64> = chains.iter().map(|c| c.weight).collect();
        let chain_alias =
            Alias::new(&weights).expect("at least one chain stays live under every input");

        // 5. Sparse successor graph (sub-stream 4). The graph is built
        //    from the *input-invariant* base weights with identical RNG
        //    consumption for every chain, so Train and Ref share their
        //    control-flow structure edge for edge; only then are edges into
        //    chains dead under this input redirected to a deterministic
        //    live stand-in (the hottest live member of the dead chain's
        //    group). Each live chain has one dominant successor — real
        //    control flow mostly takes the same path — which keeps history
        //    contexts recurring.
        let mut graph_rng = base.substream(4);
        let base_weights: Vec<f64> = (0..num_chains).map(zipf_weight).collect();
        let base_alias = Alias::new(&base_weights).expect("positive zipf weights");
        // Input-invariant per-group alias over *base* weights.
        let group_base: Vec<Option<(Vec<usize>, Alias)>> = (0..num_groups)
            .map(|g| {
                let members: Vec<usize> =
                    (g * GROUP_SIZE..((g + 1) * GROUP_SIZE).min(num_chains)).collect();
                let w: Vec<f64> = members.iter().map(|&c| base_weights[c]).collect();
                Alias::new(&w).ok().map(|a| (members, a))
            })
            .collect();
        // Deterministic live stand-in per group (hottest live member).
        let live_fallback_of_group: Vec<Option<usize>> = (0..num_groups)
            .map(|g| {
                (g * GROUP_SIZE..((g + 1) * GROUP_SIZE).min(num_chains))
                    .filter(|&c| chains[c].weight > 0.0)
                    .max_by(|&a, &b| chains[a].weight.total_cmp(&chains[b].weight))
            })
            .collect();
        let global_fallback = (0..num_chains)
            .filter(|&c| chains[c].weight > 0.0)
            .max_by(|&a, &b| chains[a].weight.total_cmp(&chains[b].weight))
            .expect("at least one live chain");
        let redirect = |t: usize| -> usize {
            if chains[t].weight > 0.0 {
                t
            } else {
                live_fallback_of_group[t / GROUP_SIZE].unwrap_or(global_fallback)
            }
        };
        let successors: Vec<Option<SuccessorSet>> = (0..num_chains)
            .map(|c| {
                // Consume identical draws for every chain, live or dead.
                let degree = 2 + graph_rng.range(4) as usize;
                let mut targets = Vec::with_capacity(degree);
                let mut target_weights = Vec::with_capacity(degree);
                for k in 0..degree {
                    let local = graph_rng.bernoulli(0.9);
                    let t = match (&group_base[c / GROUP_SIZE], local) {
                        (Some((members, alias)), true) => members[alias.sample(&mut graph_rng)],
                        _ => base_alias.sample(&mut graph_rng),
                    };
                    // One dominant successor: real control flow mostly takes
                    // the same path, which keeps history contexts recurring.
                    let w = if k == 0 {
                        16.0
                    } else {
                        0.3 + graph_rng.next_f64() * 1.2
                    };
                    targets.push(redirect(t));
                    target_weights.push(w);
                }
                if chains[c].weight == 0.0 {
                    return None;
                }
                let alias = Alias::new(&target_weights).expect("positive weights");
                Some(SuccessorSet { targets, alias })
            })
            .collect();

        Self {
            name: format!("{}.{}", spec.name, input.name()),
            input,
            sites,
            chains,
            chain_alias,
            successors,
        }
    }

    /// The `"<benchmark>.<input>"` label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The input set this model was materialized for.
    pub fn input(&self) -> InputSet {
        self.input
    }

    /// All static sites.
    pub fn sites(&self) -> &[SiteModel] {
        &self.sites
    }

    /// All chains.
    pub fn chains(&self) -> &[ChainModel] {
        &self.chains
    }

    /// Samples an entry chain (used to start the walk).
    pub fn sample_chain<R: Rng>(&self, rng: &mut R) -> usize {
        self.chain_alias.sample(rng)
    }

    /// Samples the chain following `current` on the Markov walk.
    ///
    /// # Panics
    ///
    /// Panics if `current` is dead under this input (the walk can never be
    /// there).
    pub fn sample_successor<R: Rng>(&self, current: usize, rng: &mut R) -> usize {
        let set = self.successors[current].as_ref().unwrap_or_else(|| {
            panic!(
                "successor of a live chain: chain {current} weight {}",
                self.chains[current].weight
            )
        });
        set.targets[set.alias.sample(rng)]
    }

    /// Static instruction count of the program model (all block bodies plus
    /// their branches) — the Table 1 "#Instructions (static)" figure.
    pub fn static_instructions(&self) -> u64 {
        self.sites.iter().map(|s| s.gap as u64 + 1).sum()
    }
}

fn sample_behavior<R: Rng>(
    mixture: &Alias,
    stickiness_mean: f64,
    latch_noise_mean: f64,
    rng: &mut R,
) -> BranchBehavior {
    let direction = rng.bernoulli(0.55); // mild global taken lean
                                         // Strong branches are mostly *structural* (their latch follows the
                                         // activation's data variant); weak branches are genuinely noisy
                                         // per-activation data tests. The extra latch noise per class models
                                         // that gradient on top of the benchmark mean.
    let biased = |bias: f64, extra_noise: f64, sticky_scale: f64, rng: &mut R| {
        let stickiness =
            ((stickiness_mean + (rng.next_f64() - 0.5) * 0.3) * sticky_scale).clamp(0.0, 1.0);
        let noise = (latch_noise_mean + extra_noise + (rng.next_f64() - 0.5) * 0.2).clamp(0.0, 1.0);
        BranchBehavior::Biased {
            p_taken: if direction { bias } else { 1.0 - bias },
            stickiness,
            noise,
            salt: rng.next_u64(),
        }
    };
    match mixture.sample(rng) {
        0 => {
            let bias = 0.965 + rng.next_f64() * 0.034;
            biased(bias, 0.0, 1.0, rng)
        }
        1 => {
            // Moderately biased: mildly noisier than structural branches.
            let bias = 0.80 + rng.next_f64() * 0.16;
            biased(bias, 0.10, 1.0, rng)
        }
        2 => {
            // Weakly biased: fully variant-driven. The balanced latch
            // assignment makes the branch look like a noisy coin to a
            // per-address counter while staying a learnable function of the
            // visible activation context for history predictors — the
            // "hard but correlated" population of real programs.
            let bias = 0.55 + rng.next_f64() * 0.25;
            biased(bias, 0.0, 1.0, rng)
        }
        3 => BranchBehavior::FollowGlobal {
            offset: 1 + rng.range(4) as u32,
            invert: rng.bernoulli(0.4),
            noise: 0.01 + rng.next_f64() * 0.05 + latch_noise_mean * 0.3,
        },
        4 => {
            let len = 2 + rng.range(3) as usize;
            let pattern: Vec<bool> = (0..len).map(|_| rng.bernoulli(0.5)).collect();
            BranchBehavior::Pattern { pattern }
        }
        _ => BranchBehavior::Loop {
            period: 2 + rng.range(3) as u32,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::Benchmark;

    fn model(input: InputSet) -> ProgramModel {
        ProgramModel::materialize(&Benchmark::Compress.spec(), input, 11)
    }

    #[test]
    fn site_count_matches_spec() {
        let m = model(InputSet::Train);
        assert_eq!(m.sites().len(), Benchmark::Compress.spec().static_sites);
    }

    #[test]
    fn every_chain_ends_in_a_backedge() {
        let m = model(InputSet::Train);
        for chain in m.chains() {
            let last = *chain.sites.last().unwrap();
            assert_eq!(m.sites()[last].behavior, BranchBehavior::LoopBack);
            // And no interior site is a backedge.
            for &s in &chain.sites[..chain.sites.len() - 1] {
                assert_ne!(m.sites()[s].behavior, BranchBehavior::LoopBack);
            }
        }
    }

    #[test]
    fn chains_partition_the_sites() {
        let m = model(InputSet::Train);
        let mut seen = vec![false; m.sites().len()];
        for chain in m.chains() {
            for &s in &chain.sites {
                assert!(!seen[s], "site {s} in two chains");
                seen[s] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every site belongs to a chain");
    }

    #[test]
    fn site_addresses_are_distinct_and_word_aligned() {
        let m = model(InputSet::Train);
        let mut pcs: Vec<u64> = m.sites().iter().map(|s| s.pc.0).collect();
        pcs.sort_unstable();
        pcs.dedup();
        assert_eq!(pcs.len(), m.sites().len(), "duplicate site addresses");
        assert!(m.sites().iter().all(|s| s.pc.0 % 4 == 0));
    }

    #[test]
    fn gap_tracks_cbr_target() {
        let m = model(InputSet::Ref);
        let spec = Benchmark::Compress.spec();
        let mean_gap: f64 =
            m.sites().iter().map(|s| s.gap as f64).sum::<f64>() / m.sites().len() as f64;
        let target = 1000.0 / spec.cbrs_per_ki_ref - 1.0;
        assert!(
            (mean_gap - target).abs() < 1.5,
            "mean gap {mean_gap}, target {target}"
        );
    }

    #[test]
    fn geometric_iters_have_requested_mean() {
        let chain = ChainModel {
            sites: vec![0],
            iter_model: IterModel::Geometric(4.0),
            variants: 4,
            weight: 1.0,
        };
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| chain.sample_iters(&mut rng) as u64).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 4.0).abs() < 0.15, "mean iters {mean}");
    }

    #[test]
    fn fixed_iters_are_fixed() {
        let chain = ChainModel {
            sites: vec![0],
            iter_model: IterModel::Fixed(5),
            variants: 4,
            weight: 1.0,
        };
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        for _ in 0..10 {
            assert_eq!(chain.sample_iters(&mut rng), 5);
        }
    }

    #[test]
    fn ref_perturbs_some_biased_sites() {
        let t = model(InputSet::Train);
        let r = model(InputSet::Ref);
        let mut flips = 0;
        let mut compared = 0;
        for (a, b) in t.sites().iter().zip(r.sites().iter()) {
            if let (
                BranchBehavior::Biased { p_taken: pa, .. },
                BranchBehavior::Biased { p_taken: pb, .. },
            ) = (&a.behavior, &b.behavior)
            {
                compared += 1;
                if (pa > &0.5) != (pb > &0.5) {
                    flips += 1;
                }
            }
        }
        assert!(compared > 100);
        assert!(flips > 0, "ref input should flip some directions");
        assert!(
            (flips as f64) < compared as f64 * 0.2,
            "flips should be a small minority: {flips}/{compared}"
        );
    }

    #[test]
    fn static_instructions_accounting() {
        let m = model(InputSet::Train);
        let manual: u64 = m.sites().iter().map(|s| s.gap as u64 + 1).sum();
        assert_eq!(m.static_instructions(), manual);
    }

    use sdbp_util::rng::Xoshiro256StarStar;
}
