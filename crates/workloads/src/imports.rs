//! Registry of admitted external traces.
//!
//! Imported traces need a [`crate::Benchmark`] identity so they can ride the
//! cache keys, sweep grouping, and manifests that everything downstream is
//! built on. `Benchmark` is `Copy` and its names are `&'static str`, so the
//! registry is a fixed array of process-wide slots: admitting a trace file
//! (after a validating [`sdbp_trace::scan_path`] pass) claims the next free
//! slot and yields `Benchmark::Imported(slot)`.
//!
//! Registration is per-process and append-only — the admission decision for
//! a file is made once, and every later open of the slot replays the same
//! path. The content digest recorded at admission is mixed into profile
//! cache digests so a re-registered, *changed* file can never replay stale
//! cached profiles.

use crate::benchmarks::Benchmark;
use crate::family::WorkloadFamily;
use sdbp_trace::{scan_path, TraceFormat, TraceScan};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Maximum number of imported traces per process.
pub const MAX_IMPORT_SLOTS: usize = 8;

/// Fallback display names, one per slot, used when a trace has no usable
/// embedded name.
pub(crate) const SLOT_NAMES: [&str; MAX_IMPORT_SLOTS] = [
    "import0", "import1", "import2", "import3", "import4", "import5", "import6", "import7",
];

/// An admitted external trace.
#[derive(Debug)]
pub struct ImportedTrace {
    /// The slot index backing `Benchmark::Imported(slot)`.
    pub slot: u8,
    /// Display name: the trace's embedded name (input suffix stripped), or
    /// the slot fallback (`importN`).
    pub display_name: &'static str,
    /// The family the trace reports under. A re-import of an exported
    /// synthetic run (display name matching a synthetic benchmark) *adopts*
    /// that benchmark's family — it is the same stream, so its cells group
    /// and compare with the generator-backed ones, byte-identically. A
    /// foreign trace is [`WorkloadFamily::Imported`].
    pub family: WorkloadFamily,
    /// Where the trace file lives.
    pub path: PathBuf,
    /// The autodetected on-disk format.
    pub format: TraceFormat,
    /// Events counted by the admission scan.
    pub events: u64,
    /// Instructions accounted by the admission scan.
    pub total_instructions: u64,
    /// FNV-1a content digest of the decoded event stream.
    pub digest: u64,
}

impl ImportedTrace {
    /// Conditional branches per thousand instructions.
    pub fn cbrs_per_ki(&self) -> f64 {
        if self.total_instructions == 0 {
            0.0
        } else {
            self.events as f64 * 1000.0 / self.total_instructions as f64
        }
    }
}

static SLOTS: [OnceLock<ImportedTrace>; MAX_IMPORT_SLOTS] =
    [const { OnceLock::new() }; MAX_IMPORT_SLOTS];
static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

/// Scans and admits the trace at `path`, returning its benchmark identity.
///
/// Admission is strict: a decode error anywhere in the file (truncation,
/// corruption) rejects the trace — the `sdbp check` SDBP07x lints report
/// the details.
///
/// # Errors
///
/// A rendered message when the file cannot be opened or scanned, the scan
/// hits a decode error, the trace is empty, or all slots are taken.
pub fn register(path: &Path) -> Result<Benchmark, String> {
    let scan = scan_path(path).map_err(|e| format!("{}: {e}", path.display()))?;
    register_scanned(path, &scan)
}

/// Admits a trace already scanned by the caller (avoids a second pass when
/// `sdbp ingest` has just scanned it).
///
/// # Errors
///
/// Same conditions as [`register`], minus the scan itself.
pub fn register_scanned(path: &Path, scan: &TraceScan) -> Result<Benchmark, String> {
    if let Some(err) = &scan.error {
        return Err(format!("{}: {err}", path.display()));
    }
    if scan.events == 0 {
        return Err(format!(
            "{}: trace contains no branch events",
            path.display()
        ));
    }
    let slot = NEXT_SLOT.fetch_add(1, Ordering::SeqCst);
    if slot >= MAX_IMPORT_SLOTS {
        return Err(format!(
            "all {MAX_IMPORT_SLOTS} import slots are in use; restart the process to re-register"
        ));
    }
    let display_name = display_name_for(&scan.name, slot);
    let family = Benchmark::SYNTHETIC
        .iter()
        .find(|b| b.name() == display_name)
        .map_or(WorkloadFamily::Imported, |b| b.family());
    let entry = ImportedTrace {
        slot: slot as u8,
        display_name,
        family,
        path: path.to_path_buf(),
        format: scan.format,
        events: scan.events,
        total_instructions: scan.total_instructions,
        digest: scan.digest,
    };
    SLOTS[slot]
        .set(entry)
        .expect("slot indices are handed out exactly once");
    Ok(Benchmark::Imported(slot as u8))
}

/// The admitted trace backing a slot, if registered.
pub fn info(slot: u8) -> Option<&'static ImportedTrace> {
    SLOTS.get(slot as usize).and_then(|s| s.get())
}

/// All currently registered imported benchmarks, in admission order.
pub fn registered() -> Vec<Benchmark> {
    (0..MAX_IMPORT_SLOTS as u8)
        .filter(|&s| info(s).is_some())
        .map(Benchmark::Imported)
        .collect()
}

/// Resolves a name (`importN` or a registered display name) to an imported
/// benchmark. Synthetic names take precedence in `Benchmark::from_str`;
/// this only sees names the synthetic table rejected.
pub fn lookup(name: &str) -> Option<Benchmark> {
    for slot in 0..MAX_IMPORT_SLOTS as u8 {
        if let Some(t) = info(slot) {
            if t.display_name == name || SLOT_NAMES[slot as usize] == name {
                return Some(Benchmark::Imported(slot));
            }
        }
    }
    None
}

/// Derives the display name for a slot: the scanned name with a
/// `.train`/`.ref` input suffix stripped, so a re-imported export of
/// `h2p_rare.ref` reports as `h2p_rare` — byte-identical to the
/// generator-backed run it mirrors. Falls back to `importN`.
fn display_name_for(scanned: &str, slot: usize) -> &'static str {
    let base = scanned
        .strip_suffix(".train")
        .or_else(|| scanned.strip_suffix(".ref"))
        .unwrap_or(scanned)
        .trim();
    if base.is_empty() {
        SLOT_NAMES[slot]
    } else {
        // Leak once per admitted trace: the registry is append-only and
        // bounded at MAX_IMPORT_SLOTS entries per process.
        Box::leak(base.to_string().into_boxed_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbp_trace::{write_binary, BranchAddr, BranchEvent, TraceBuilder};

    // NOTE: the registry is process-global and tests run in one process, so
    // every test that registers does so through this helper and asserts on
    // the returned slot's info rather than on global counts.
    fn write_sample(name: &str, file: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("sdbp-imports-test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut b = TraceBuilder::named(name);
        b.push(BranchEvent::new(BranchAddr(0x1000), true, 9));
        b.push(BranchEvent::new(BranchAddr(0x1010), false, 4));
        let trace = b.finish();
        let path = dir.join(file);
        let mut buf = Vec::new();
        write_binary(&mut buf, &trace).unwrap();
        std::fs::write(&path, buf).unwrap();
        path
    }

    #[test]
    fn register_records_scan_stats_and_strips_input_suffix() {
        let path = write_sample("webfront.ref", "webfront.sdbt");
        let b = register(&path).unwrap();
        let Benchmark::Imported(slot) = b else {
            panic!("expected an imported benchmark, got {b:?}");
        };
        let t = info(slot).unwrap();
        assert_eq!(t.display_name, "webfront");
        assert_eq!(t.family, WorkloadFamily::Imported);
        assert_eq!(t.events, 2);
        assert_eq!(t.total_instructions, 10 + 5);
        assert_eq!(t.format, TraceFormat::SdbtBinary);
        assert!(t.cbrs_per_ki() > 100.0);
        assert_eq!(lookup("webfront"), Some(b));
        assert_eq!(lookup(SLOT_NAMES[slot as usize]), Some(b));
        assert!(registered().contains(&b));
    }

    #[test]
    fn truncated_traces_are_rejected_at_admission() {
        let path = write_sample("cut.ref", "cut.sdbt");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 2]).unwrap();
        let err = register(&path).unwrap_err();
        assert!(err.contains("truncated"), "got: {err}");
    }

    #[test]
    fn reimported_synthetic_exports_adopt_their_family() {
        let path = write_sample("h2p_churn.ref", "h2p_churn.sdbt");
        let b = register(&path).unwrap();
        let Benchmark::Imported(slot) = b else {
            panic!("expected an imported benchmark, got {b:?}");
        };
        let t = info(slot).unwrap();
        assert_eq!(t.display_name, "h2p_churn");
        assert_eq!(t.family, WorkloadFamily::H2p);
        assert_eq!(b.family(), WorkloadFamily::H2p);
        // The synthetic table wins name resolution; the import is only
        // reachable through its slot or the returned benchmark value.
        assert_eq!(
            "h2p_churn".parse::<Benchmark>().unwrap(),
            Benchmark::H2pChurn
        );
    }

    #[test]
    fn unknown_names_resolve_to_nothing() {
        assert_eq!(lookup("no-such-trace"), None);
        assert!(info(MAX_IMPORT_SLOTS as u8).is_none(), "out of range");
    }
}
