//! Property-based tests over the workload substrate.

#![cfg(test)]

use crate::spec::{InputSet, Mixture, Perturbation, Workload, WorkloadSpec};
use proptest::prelude::*;
use sdbp_trace::{BranchSource, TraceStats};

/// A random — but always valid — workload specification.
fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        50usize..800,                                         // static sites
        40.0f64..180.0,                                       // cbrs/ki
        (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0), // mixture knobs
        0.0f64..1.3,                                          // zipf exponent
        0.0f64..1.0,                                          // stickiness
        0.0f64..1.0,                                          // latch noise
        (0.0f64..0.6, 0.0f64..0.6, 0.0f64..1.0),              // micro / straight / fixed
        2.0f64..24.0,                                         // mean iterations
    )
        .prop_map(
            |(
                sites,
                cbr,
                (m1, m2, m3, m4),
                zipf,
                stick,
                noise,
                (micro, straight, fixed),
                iters,
            )| {
                WorkloadSpec {
                    name: "prop",
                    static_sites: sites,
                    cbrs_per_ki_train: cbr,
                    cbrs_per_ki_ref: cbr,
                    mixture: Mixture {
                        // +0.05 keeps the mixture valid even when all knobs
                        // draw zero.
                        strong_biased: m1 + 0.05,
                        moderate_biased: m2,
                        weak_biased: m3,
                        correlated: m4,
                        pattern: 0.05,
                        loop_sites: 0.05,
                    },
                    zipf_exponent: zipf,
                    biased_stickiness: stick,
                    latch_noise: noise,
                    micro_chains: micro,
                    straight_chains: straight,
                    fixed_iter_chains: fixed,
                    mean_iterations: iters,
                    perturbation: Perturbation {
                        flip_fraction: 0.03,
                        drift_sd: 0.02,
                        ref_only_chains: 0.05,
                        train_only_chains: 0.02,
                    },
                    train_instructions: 100_000,
                    ref_instructions: 100_000,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any valid spec materializes and streams deterministically.
    #[test]
    fn any_spec_generates_deterministically(spec in arb_spec(), seed in 0u64..1000) {
        let w = Workload::from_spec(spec);
        let collect = |input: InputSet| {
            let mut g = w.generator(input, seed).take_instructions(30_000);
            let mut v = Vec::new();
            while let Some(e) = g.next_event() {
                v.push(e);
            }
            v
        };
        prop_assert_eq!(collect(InputSet::Train), collect(InputSet::Train));
        prop_assert!(!collect(InputSet::Ref).is_empty());
    }

    /// Site addresses are distinct, word-aligned, and input-invariant.
    #[test]
    fn program_structure_is_sound(spec in arb_spec(), seed in 0u64..1000) {
        let w = Workload::from_spec(spec.clone());
        let train = w.program(InputSet::Train, seed);
        let reference = w.program(InputSet::Ref, seed);
        prop_assert_eq!(train.sites().len(), spec.static_sites);
        let mut pcs: Vec<u64> = train.sites().iter().map(|s| s.pc.0).collect();
        pcs.sort_unstable();
        let before = pcs.len();
        pcs.dedup();
        prop_assert_eq!(pcs.len(), before, "duplicate site addresses");
        for (a, b) in train.sites().iter().zip(reference.sites().iter()) {
            prop_assert_eq!(a.pc, b.pc);
            prop_assert!(a.pc.0 % 4 == 0);
        }
    }

    /// The generated stream's CBRs/KI lands near the spec's target.
    #[test]
    fn cbr_rate_tracks_target(spec in arb_spec()) {
        let target = spec.cbrs_per_ki_ref;
        let w = Workload::from_spec(spec);
        let stats = TraceStats::from_source(
            w.generator(InputSet::Ref, 5).take_instructions(300_000),
        );
        let got = stats.cbrs_per_ki();
        prop_assert!(
            (got - target).abs() / target < 0.25,
            "cbr {} vs target {}",
            got,
            target
        );
    }

    /// Every emitted pc belongs to the materialized program.
    #[test]
    fn events_reference_known_sites(spec in arb_spec(), seed in 0u64..100) {
        let w = Workload::from_spec(spec);
        let program = w.program(InputSet::Ref, seed);
        let known: std::collections::HashSet<u64> =
            program.sites().iter().map(|s| s.pc.0).collect();
        let mut g = w.generator(InputSet::Ref, seed).take_instructions(20_000);
        while let Some(e) = g.next_event() {
            prop_assert!(known.contains(&e.pc.0), "unknown pc {}", e.pc);
        }
    }
}
