//! Workload specifications: mixtures, inputs, and perturbations.

use crate::benchmarks::Benchmark;
use crate::generator::WorkloadGenerator;
use crate::program::ProgramModel;
use std::fmt;

/// Which input set drives a run — the SPEC convention the paper follows.
///
/// `Train` is the profiling input, `Ref` the measurement input. The two
/// share program structure but differ in behavior (Table 5 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputSet {
    /// The training/profiling input.
    Train,
    /// The reference/measurement input.
    Ref,
}

impl InputSet {
    /// The SPEC-style lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            InputSet::Train => "train",
            InputSet::Ref => "ref",
        }
    }
}

impl fmt::Display for InputSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Site-behavior mixture weights for one benchmark model.
///
/// Weights are relative (normalized internally). They control the
/// populations the paper's analysis hinges on: the *biased* mass determines
/// what bimodal and `Static_95` capture; the *history* mass (correlated +
/// pattern + loop) determines how much ghist-style predictors can win.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mixture {
    /// Bernoulli sites with bias drawn from 0.965–0.999.
    pub strong_biased: f64,
    /// Bernoulli sites with bias drawn from 0.80–0.96.
    pub moderate_biased: f64,
    /// Bernoulli sites with bias drawn from 0.55–0.80.
    pub weak_biased: f64,
    /// Global-history parity sites (depth 2–6, small noise).
    pub correlated: f64,
    /// Short repeating-pattern sites.
    pub pattern: f64,
    /// Deterministic loop-cycle sites (period 2–8).
    pub loop_sites: f64,
}

impl Mixture {
    /// The class weights as an array, in declaration order.
    pub fn weights(&self) -> [f64; 6] {
        [
            self.strong_biased,
            self.moderate_biased,
            self.weak_biased,
            self.correlated,
            self.pattern,
            self.loop_sites,
        ]
    }

    /// Validates that weights are non-negative and not all zero.
    pub fn is_valid(&self) -> bool {
        let w = self.weights();
        w.iter().all(|x| x.is_finite() && *x >= 0.0) && w.iter().sum::<f64>() > 0.0
    }
}

/// How the `Ref` input perturbs site behavior relative to `Train`.
///
/// Calibrated per benchmark against the paper's Table 5: most branches move
/// by <5 percentage points, a few percent flip majority direction, and a
/// small tail moves by >50 points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Perturbation {
    /// Fraction of biased sites whose taken-probability reflects
    /// (`p := 1 - p`) under `Ref` — the majority-direction reversals.
    pub flip_fraction: f64,
    /// Standard deviation of Gaussian drift added to every biased site's
    /// taken-probability under `Ref`.
    pub drift_sd: f64,
    /// Fraction of chains that only execute under `Ref` (input-dependent
    /// code paths; reduces the `Train` input's coverage).
    pub ref_only_chains: f64,
    /// Fraction of chains that only execute under `Train`.
    pub train_only_chains: f64,
}

impl Perturbation {
    /// No behavioral change between inputs (useful in tests).
    pub fn none() -> Self {
        Self {
            flip_fraction: 0.0,
            drift_sd: 0.0,
            ref_only_chains: 0.0,
            train_only_chains: 0.0,
        }
    }
}

/// The full static description of one synthetic benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Benchmark name (e.g. `"gcc"`).
    pub name: &'static str,
    /// Number of static conditional branch sites (paper Table 1).
    pub static_sites: usize,
    /// Dynamic conditional branches per thousand instructions under `Train`.
    pub cbrs_per_ki_train: f64,
    /// Dynamic conditional branches per thousand instructions under `Ref`.
    pub cbrs_per_ki_ref: f64,
    /// Behavior mixture for non-back-edge sites.
    pub mixture: Mixture,
    /// Zipf exponent of chain execution weights (higher = more concentrated
    /// hot code, more aliasing pressure per table entry).
    pub zipf_exponent: f64,
    /// Mean `stickiness` of biased sites: the probability that a repeat
    /// execution inside one chain activation reuses the activation-latched
    /// outcome (what history-indexed predictors can recover beyond the
    /// bias).
    pub biased_stickiness: f64,
    /// Mean latch noise of biased sites: the probability that an
    /// activation's latch ignores the hidden variant and draws fresh
    /// (`1.0` = pure Bernoulli branches, `0.0` = fully data-determined).
    pub latch_noise: f64,
    /// Fraction of chains that are straight-line code (no loop; back-edge
    /// never taken).
    pub straight_chains: f64,
    /// Fraction of chains that are tight *micro-loops* (1–2 branches, trip
    /// counts 2–9) — `while (p) p = p->next` style code. Their short periods
    /// fit inside a global-history window, so history-indexed predictors
    /// predict their exits while a bimodal counter misses 1–2 per traversal;
    /// this population is the main source of the ghist/gshare advantage.
    pub micro_chains: f64,
    /// Of the looping chains, the fraction with a *fixed* trip count
    /// (history-predictable exits); the rest draw geometric counts.
    pub fixed_iter_chains: f64,
    /// Mean trip count of looping chains.
    pub mean_iterations: f64,
    /// `Train`→`Ref` behavioral perturbation.
    pub perturbation: Perturbation,
    /// Default instruction budget for a `Train` run.
    pub train_instructions: u64,
    /// Default instruction budget for a `Ref` run.
    pub ref_instructions: u64,
}

impl WorkloadSpec {
    /// The CBRs/KI target for an input.
    pub fn cbrs_per_ki(&self, input: InputSet) -> f64 {
        match input {
            InputSet::Train => self.cbrs_per_ki_train,
            InputSet::Ref => self.cbrs_per_ki_ref,
        }
    }

    /// The default instruction budget for an input.
    pub fn default_instructions(&self, input: InputSet) -> u64 {
        match input {
            InputSet::Train => self.train_instructions,
            InputSet::Ref => self.ref_instructions,
        }
    }
}

/// A runnable workload: a spec plus constructors for generators.
///
/// # Examples
///
/// ```
/// use sdbp_workloads::{Benchmark, InputSet, Workload};
///
/// let w = Workload::spec95(Benchmark::M88ksim);
/// assert_eq!(w.spec().name, "m88ksim");
/// let gen = w.generator(InputSet::Ref, 7);
/// assert!(gen.program().sites().len() >= 5000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    spec: WorkloadSpec,
}

impl Workload {
    /// Creates a workload from a custom spec.
    pub fn from_spec(spec: WorkloadSpec) -> Self {
        Self { spec }
    }

    /// One of the six calibrated SPECINT95 models.
    pub fn spec95(benchmark: Benchmark) -> Self {
        Self {
            spec: benchmark.spec(),
        }
    }

    /// The underlying specification.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Materializes the program model for an input.
    ///
    /// Two calls with the same `(input, seed)` produce identical models; the
    /// `Train` and `Ref` models of one seed share their site structure.
    pub fn program(&self, input: InputSet, seed: u64) -> ProgramModel {
        ProgramModel::materialize(&self.spec, input, seed)
    }

    /// Creates an event generator for an input.
    ///
    /// The generator is unbounded; cap it with
    /// [`sdbp_trace::BranchSource::take_instructions`], typically at
    /// [`WorkloadSpec::default_instructions`].
    pub fn generator(&self, input: InputSet, seed: u64) -> WorkloadGenerator {
        WorkloadGenerator::new(self.program(input, seed), seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_names() {
        assert_eq!(InputSet::Train.to_string(), "train");
        assert_eq!(InputSet::Ref.to_string(), "ref");
    }

    #[test]
    fn mixture_validation() {
        let m = Mixture {
            strong_biased: 1.0,
            moderate_biased: 0.0,
            weak_biased: 0.0,
            correlated: 0.0,
            pattern: 0.0,
            loop_sites: 0.0,
        };
        assert!(m.is_valid());
        let zero = Mixture {
            strong_biased: 0.0,
            moderate_biased: 0.0,
            weak_biased: 0.0,
            correlated: 0.0,
            pattern: 0.0,
            loop_sites: 0.0,
        };
        assert!(!zero.is_valid());
        let neg = Mixture {
            strong_biased: -1.0,
            ..m
        };
        assert!(!neg.is_valid());
    }

    #[test]
    fn spec_accessors() {
        let spec = Benchmark::Go.spec();
        assert!(spec.cbrs_per_ki(InputSet::Train) > 50.0);
        assert!(spec.default_instructions(InputSet::Ref) > 0);
    }

    #[test]
    fn same_seed_same_program() {
        let w = Workload::spec95(Benchmark::Compress);
        let a = w.program(InputSet::Train, 5);
        let b = w.program(InputSet::Train, 5);
        assert_eq!(a.sites().len(), b.sites().len());
        assert_eq!(a.sites()[0].pc, b.sites()[0].pc);
    }

    #[test]
    fn train_and_ref_share_site_structure() {
        let w = Workload::spec95(Benchmark::Compress);
        let t = w.program(InputSet::Train, 5);
        let r = w.program(InputSet::Ref, 5);
        assert_eq!(t.sites().len(), r.sites().len());
        for (a, b) in t.sites().iter().zip(r.sites().iter()) {
            assert_eq!(a.pc, b.pc, "site addresses must be input-invariant");
        }
    }
}
