//! Workload families: the taxonomy axis above individual benchmarks.
//!
//! The paper evaluates six SPECINT95 programs; ROADMAP item 2 asks where
//! static hints help on workloads the paper never saw. Families group
//! benchmarks whose branch streams are *comparable* — aggregating Mbr/s or
//! MISPs/KI across families would average incommensurable streams, so sweep
//! summaries and `BENCH_families.json` report per family.
//!
//! * [`WorkloadFamily::Spec95`] — the paper's six calibrated models.
//! * [`WorkloadFamily::Server`] — high CBR/KI, flat biases, and
//!   context-switch interleaving of several processes (the classic
//!   server-workload aliasing stressor).
//! * [`WorkloadFamily::H2p`] — hard-to-predict branches per Lin & Tarsa's
//!   taxonomy ("Branch Prediction Is Not a Solved Problem"): rare,
//!   data-dependent, history-resistant.
//! * [`WorkloadFamily::Imported`] — externally captured traces admitted
//!   through [`crate::imports`].

use std::fmt;
use std::str::FromStr;

/// The family a benchmark's branch stream belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WorkloadFamily {
    /// The six calibrated SPECINT95 models from the paper.
    Spec95,
    /// Server-style: high CBR/KI, flat biases, context-switch interleaving.
    Server,
    /// Hard-to-predict: rare, data-dependent, history-resistant branches.
    H2p,
    /// Externally captured traces ingested through the importer seam.
    Imported,
}

impl WorkloadFamily {
    /// All families, in report order.
    pub const ALL: [WorkloadFamily; 4] = [
        WorkloadFamily::Spec95,
        WorkloadFamily::Server,
        WorkloadFamily::H2p,
        WorkloadFamily::Imported,
    ];

    /// Stable lowercase name used in CLI flags, manifests, and reports.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadFamily::Spec95 => "spec95",
            WorkloadFamily::Server => "server",
            WorkloadFamily::H2p => "h2p",
            WorkloadFamily::Imported => "imported",
        }
    }
}

impl fmt::Display for WorkloadFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for WorkloadFamily {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "spec95" | "specint95" => Ok(WorkloadFamily::Spec95),
            "server" => Ok(WorkloadFamily::Server),
            "h2p" => Ok(WorkloadFamily::H2p),
            "imported" => Ok(WorkloadFamily::Imported),
            other => Err(format!(
                "unknown workload family '{other}', expected spec95, server, h2p, or imported"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for f in WorkloadFamily::ALL {
            assert_eq!(f.name().parse::<WorkloadFamily>().unwrap(), f);
        }
        assert_eq!(
            "specint95".parse::<WorkloadFamily>().unwrap(),
            WorkloadFamily::Spec95
        );
        assert!("desktop".parse::<WorkloadFamily>().is_err());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(WorkloadFamily::H2p.to_string(), "h2p");
        assert_eq!(WorkloadFamily::Server.to_string(), "server");
    }
}
