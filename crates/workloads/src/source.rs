//! Uniform branch-source construction across all benchmark kinds.
//!
//! [`open_source`] is the single dispatch point the profiling and
//! measurement passes go through: it hides whether a benchmark's stream
//! comes from one generator (SPEC95, H2P), several context-switch
//! interleaved generators (server family), or a trace file on disk
//! (imported). Everything downstream sees a plain [`BranchSource`], so
//! fusion and lockstep execution ride unchanged.

use crate::benchmarks::Benchmark;
use crate::generator::WorkloadGenerator;
use crate::imports;
use crate::spec::{InputSet, Workload};
use sdbp_trace::{
    open_path, BranchEvent, BranchSource, ImportStream, InterleaveSource, SkipSource,
};

/// Number of processes interleaved for server-family benchmarks.
pub const SERVER_PROCESSES: usize = 4;
/// Context-switch quantum for server interleaving, in instructions.
///
/// Tens of thousands of instructions per switch is the classic OS
/// timeslice-to-pipeline ratio at this simulation scale: long enough that
/// each process builds up predictor state, short enough that the processes
/// genuinely collide in the tables.
pub const SERVER_QUANTUM: u64 = 30_000;
/// Per-process phase offset, in instructions: process `i` skips `i` times
/// this many instructions so the interleaved streams are not in lockstep.
const SERVER_PHASE_STRIDE: u64 = 7_500;

/// The branch stream backing one benchmark/input/seed cell.
///
/// Obtained from [`open_source`]; behaves as a plain [`BranchSource`].
#[derive(Debug)]
pub enum BenchmarkSource {
    /// A single synthetic generator (SPEC95 and H2P families).
    Generated(WorkloadGenerator),
    /// Several phase-shifted generators interleaved at context-switch
    /// quanta (server family).
    Server(InterleaveSource<SkipSource<WorkloadGenerator>>),
    /// An external trace replayed from disk.
    Imported(ImportStream),
}

impl BenchmarkSource {
    /// The decode error that ended an imported stream early, if any.
    ///
    /// Always `None` for synthetic sources. Admission scans the whole file,
    /// so this only fires if the file changed on disk after registration.
    pub fn import_error(&self) -> Option<&sdbp_trace::TraceError> {
        match self {
            BenchmarkSource::Imported(s) => s.error(),
            _ => None,
        }
    }
}

impl BranchSource for BenchmarkSource {
    fn next_event(&mut self) -> Option<BranchEvent> {
        match self {
            BenchmarkSource::Generated(s) => s.next_event(),
            BenchmarkSource::Server(s) => s.next_event(),
            BenchmarkSource::Imported(s) => s.next_event(),
        }
    }

    fn fill_events(&mut self, buf: &mut Vec<BranchEvent>, max: usize) -> usize {
        match self {
            BenchmarkSource::Generated(s) => s.fill_events(buf, max),
            BenchmarkSource::Server(s) => s.fill_events(buf, max),
            BenchmarkSource::Imported(s) => s.fill_events(buf, max),
        }
    }

    fn label(&self) -> &str {
        match self {
            BenchmarkSource::Generated(s) => s.label(),
            BenchmarkSource::Server(s) => s.label(),
            BenchmarkSource::Imported(s) => s.label(),
        }
    }
}

/// Opens the branch stream for one `(benchmark, input, seed)` cell.
///
/// * SPEC95 and H2P benchmarks stream from one seeded generator.
/// * Server benchmarks interleave [`SERVER_PROCESSES`] phase-shifted
///   generator instances at [`SERVER_QUANTUM`]-instruction context-switch
///   quanta; sub-process seeds are derived from `seed`, so the cell stays
///   fully deterministic.
/// * Imported benchmarks reopen the registered trace file; `input` and
///   `seed` do not alter the stream (the file *is* the run).
///
/// All sources label themselves `name.input` for reports.
///
/// # Panics
///
/// For an imported benchmark whose registered file can no longer be opened
/// or autodetected — registration is the admission point, so a failure here
/// means the file changed or vanished after admission.
pub fn open_source(benchmark: Benchmark, input: InputSet, seed: u64) -> BenchmarkSource {
    // Dispatch on the variant, not on `family()`: an imported trace may
    // *adopt* a synthetic family for reporting, yet always replays from disk.
    match benchmark {
        Benchmark::ServerWeb | Benchmark::ServerDb => {
            let workload = Workload::from_spec(benchmark.spec());
            let subs = (0..SERVER_PROCESSES)
                .map(|i| {
                    let sub_seed = seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    workload
                        .generator(input, sub_seed)
                        .skip_instructions(i as u64 * SERVER_PHASE_STRIDE)
                })
                .collect();
            BenchmarkSource::Server(InterleaveSource::new(subs, SERVER_QUANTUM))
        }
        Benchmark::Imported(slot) => {
            let info = imports::info(slot).unwrap_or_else(|| {
                panic!("imported benchmark slot {slot} used before registration")
            });
            let stream = open_path(&info.path).unwrap_or_else(|e| {
                panic!(
                    "registered trace {} is no longer readable: {e}",
                    info.path.display()
                )
            });
            BenchmarkSource::Imported(stream.with_label(format!(
                "{}.{}",
                benchmark.name(),
                input.name()
            )))
        }
        _ => {
            BenchmarkSource::Generated(Workload::from_spec(benchmark.spec()).generator(input, seed))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbp_trace::TraceStats;

    #[test]
    fn generated_sources_match_direct_generators() {
        let mut via_source = open_source(Benchmark::Go, InputSet::Train, 3);
        let mut direct = Workload::spec95(Benchmark::Go).generator(InputSet::Train, 3);
        for _ in 0..2000 {
            assert_eq!(via_source.next_event(), direct.next_event());
        }
        assert_eq!(via_source.label(), "go.train");
    }

    #[test]
    fn server_sources_are_deterministic_and_labeled() {
        let mut a = open_source(Benchmark::ServerWeb, InputSet::Ref, 11);
        let mut b = open_source(Benchmark::ServerWeb, InputSet::Ref, 11);
        for _ in 0..5000 {
            assert_eq!(a.next_event(), b.next_event());
        }
        assert_eq!(a.label(), "server_web.ref");
    }

    #[test]
    fn server_interleaving_widens_the_working_set() {
        // Within one quantum the server stream is a single process; across
        // a window spanning several quanta, the four phase-shifted processes
        // touch more distinct sites than any one of them does alone.
        let solo = Workload::from_spec(Benchmark::ServerWeb.spec())
            .generator(InputSet::Train, 5)
            .take_instructions(4 * SERVER_QUANTUM);
        let solo_sites = TraceStats::from_source(solo).static_branches();
        let mixed = open_source(Benchmark::ServerWeb, InputSet::Train, 5)
            .take_instructions(4 * SERVER_QUANTUM);
        let mixed_sites = TraceStats::from_source(mixed).static_branches();
        assert!(
            mixed_sites > solo_sites,
            "interleaved {mixed_sites} sites vs solo {solo_sites}"
        );
    }

    #[test]
    fn server_cbr_density_is_near_target() {
        let spec = Benchmark::ServerDb.spec();
        let src = open_source(Benchmark::ServerDb, InputSet::Ref, 1).take_instructions(2_000_000);
        let stats = TraceStats::from_source(src);
        let cbr = stats.cbrs_per_ki();
        let target = spec.cbrs_per_ki_ref;
        assert!(
            (cbr - target).abs() / target < 0.15,
            "server_db: cbr {cbr:.1}, target {target}"
        );
    }

    #[test]
    fn h2p_streams_have_flat_per_site_bias() {
        // The churn class is built from re-randomizing coins: the dynamic
        // taken-rate must hover near one half, unlike every SPEC95 model.
        let src = open_source(Benchmark::H2pChurn, InputSet::Ref, 2).take_instructions(1_000_000);
        let stats = TraceStats::from_source(src);
        let taken: u64 = stats.iter().map(|(_, s)| s.taken).sum();
        let rate = taken as f64 / stats.dynamic_branches() as f64;
        assert!(
            (0.35..=0.65).contains(&rate),
            "h2p_churn dynamic taken rate {rate:.3}"
        );
    }

    #[test]
    fn h2p_rare_executes_a_wide_flat_footprint() {
        let rare = open_source(Benchmark::H2pRare, InputSet::Train, 1).take_instructions(2_000_000);
        let rare_sites = TraceStats::from_source(rare).static_branches();
        let hot = open_source(Benchmark::H2pChurn, InputSet::Train, 1).take_instructions(2_000_000);
        let hot_sites = TraceStats::from_source(hot).static_branches();
        assert!(
            rare_sites > 2 * hot_sites,
            "rare footprint {rare_sites} vs churn {hot_sites}"
        );
    }
}
