//! Synthetic SPECINT95-like branch workloads.
//!
//! The original study traced Alpha SPECINT95 binaries with Atom. Those
//! binaries, inputs, and the tracing tool are unavailable, so this crate
//! substitutes **calibrated synthetic workload models** (see `DESIGN.md` §3):
//! each of the six benchmarks (go, gcc, perl, m88ksim, compress, ijpeg) is
//! modeled as a population of static branch *sites* grouped into repeating
//! *chains* (loop bodies / hot functions), where each site carries a behavior
//! drawn from a benchmark-specific mixture:
//!
//! * **biased** sites — Bernoulli coins at strong/moderate/weak bias levels
//!   (the bimodal-predictable population; Table 2's "highly biased" mass),
//! * **correlated** sites — outcomes that are boolean functions of recent
//!   *global* branch history (the ghist/gshare-predictable population),
//! * **pattern** and **loop** sites — short deterministic repetitions,
//! * chain **back-edges** — loop branches whose outcome is decided by the
//!   traversal (taken while the chain iterates).
//!
//! Chains repeat their site sequence for a sampled iteration count, so the
//! global history stream is locally repetitive exactly the way real loop
//! nests make it — that is what gives history-indexed predictors their edge
//! while leaving Bernoulli sites capped at their bias.
//!
//! `Train` and `Ref` inputs share the site structure but perturb behaviors
//! (direction flips, bias drift, input-dependent chains), reproducing the
//! paper's Table 5 cross-input statistics.
//!
//! Beyond the paper's six programs, the crate models two further
//! [`WorkloadFamily`] groups — server-style streams (flat biases, high
//! CBR/KI, context-switch interleaving) and hard-to-predict streams per
//! Lin & Tarsa's taxonomy — and admits externally captured traces through
//! [`imports`]; [`open_source`] is the uniform dispatch point over all of
//! them.
//!
//! # Examples
//!
//! ```
//! use sdbp_trace::BranchSource;
//! use sdbp_workloads::{Benchmark, InputSet, Workload};
//!
//! let workload = Workload::spec95(Benchmark::Gcc);
//! let mut generator = workload.generator(InputSet::Train, 42).take_instructions(100_000);
//! let mut branches = 0u64;
//! while let Some(_event) = generator.next_event() {
//!     branches += 1;
//! }
//! assert!(branches > 10_000, "gcc executes ~155 branches per KI");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behavior;
pub mod benchmarks;
pub mod family;
pub mod generator;
pub mod imports;
pub mod program;
pub mod source;
pub mod spec;

pub use behavior::{BranchBehavior, SiteState};
pub use benchmarks::Benchmark;
pub use family::WorkloadFamily;
pub use generator::WorkloadGenerator;
pub use imports::ImportedTrace;
pub use program::{ChainModel, IterModel, ProgramModel, SiteModel};
pub use source::{open_source, BenchmarkSource};
pub use spec::{InputSet, Mixture, Perturbation, Workload, WorkloadSpec};

#[cfg(test)]
mod proptests;
