//! The six calibrated SPECINT95 benchmark models.
//!
//! Structural targets (static branch counts, CBRs/KI, dynamic instruction
//! budgets) come straight from the paper's Table 1. Behavior mixtures are
//! calibrated so that the Table 2 characterization — the dynamic fraction of
//! highly biased branches and the relative accuracy of the five predictors —
//! lands close to the paper's measurements (see `EXPERIMENTS.md` for the
//! achieved values).
//!
//! Run lengths are scaled down from the paper's 0.5–63 *billion* instructions
//! to tens of millions (DESIGN.md §3, substitution 2).

use crate::family::WorkloadFamily;
use crate::imports;
use crate::spec::{InputSet, Mixture, Perturbation, WorkloadSpec};
use std::fmt;
use std::str::FromStr;

/// The benchmark models the simulator can drive.
///
/// The first six are the paper's SPECINT95 programs; the server and H2P
/// members extend the study to workload families the paper never saw
/// (ROADMAP item 2), and [`Benchmark::Imported`] names an externally
/// captured trace admitted through [`crate::imports`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// The Go-playing program: few biased branches, hardest to predict.
    Go,
    /// The GNU C compiler: the largest static branch population.
    Gcc,
    /// The Perl interpreter.
    Perl,
    /// The Motorola 88k simulator: overwhelmingly biased branches.
    M88ksim,
    /// The LZW compressor.
    Compress,
    /// The JPEG codec: branch-sparse, little aliasing.
    Ijpeg,
    /// Server front-end: request dispatch, flat biases, high CBR/KI,
    /// context-switch interleaved.
    ServerWeb,
    /// Server storage backend: B-tree probes, even flatter biases, the
    /// largest server static population, context-switch interleaved.
    ServerDb,
    /// H2P, rare class: a very flat execution profile over a large site
    /// population — each hard branch executes rarely and trains slowly
    /// (Lin & Tarsa's large-footprint H2Ps).
    H2pRare,
    /// H2P, churn class: a small set of hot, purely data-dependent coins —
    /// history-resistant no matter how much they execute (Lin & Tarsa's
    /// high-frequency H2Ps).
    H2pChurn,
    /// An externally captured trace in registry slot `n`; see
    /// [`crate::imports::register`].
    Imported(u8),
}

impl Benchmark {
    /// All benchmarks in the paper's Table 1 order.
    pub const ALL: [Benchmark; 6] = [
        Benchmark::Go,
        Benchmark::Gcc,
        Benchmark::Perl,
        Benchmark::M88ksim,
        Benchmark::Compress,
        Benchmark::Ijpeg,
    ];

    /// All synthetic benchmarks: the paper's six plus the server and H2P
    /// family members.
    pub const SYNTHETIC: [Benchmark; 10] = [
        Benchmark::Go,
        Benchmark::Gcc,
        Benchmark::Perl,
        Benchmark::M88ksim,
        Benchmark::Compress,
        Benchmark::Ijpeg,
        Benchmark::ServerWeb,
        Benchmark::ServerDb,
        Benchmark::H2pRare,
        Benchmark::H2pChurn,
    ];

    /// The benchmark's stable name.
    ///
    /// Imported benchmarks report the display name recorded at admission
    /// (the trace's embedded name), falling back to `importN` for
    /// unregistered slots.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Go => "go",
            Benchmark::Gcc => "gcc",
            Benchmark::Perl => "perl",
            Benchmark::M88ksim => "m88ksim",
            Benchmark::Compress => "compress",
            Benchmark::Ijpeg => "ijpeg",
            Benchmark::ServerWeb => "server_web",
            Benchmark::ServerDb => "server_db",
            Benchmark::H2pRare => "h2p_rare",
            Benchmark::H2pChurn => "h2p_churn",
            Benchmark::Imported(slot) => imports::info(slot)
                .map(|t| t.display_name)
                .unwrap_or_else(|| {
                    imports::SLOT_NAMES
                        .get(slot as usize)
                        .copied()
                        .unwrap_or("import?")
                }),
        }
    }

    /// The workload family this benchmark reports under.
    ///
    /// An imported trace normally reports as [`WorkloadFamily::Imported`],
    /// but a re-import of an exported synthetic run adopts the family of
    /// the benchmark it mirrors (see [`crate::imports::ImportedTrace`]) so
    /// its cells group with — and stay byte-identical to — the
    /// generator-backed equivalents.
    pub fn family(self) -> WorkloadFamily {
        match self {
            Benchmark::Go
            | Benchmark::Gcc
            | Benchmark::Perl
            | Benchmark::M88ksim
            | Benchmark::Compress
            | Benchmark::Ijpeg => WorkloadFamily::Spec95,
            Benchmark::ServerWeb | Benchmark::ServerDb => WorkloadFamily::Server,
            Benchmark::H2pRare | Benchmark::H2pChurn => WorkloadFamily::H2p,
            Benchmark::Imported(slot) => {
                imports::info(slot).map_or(WorkloadFamily::Imported, |t| t.family)
            }
        }
    }

    /// The members of a family, in report order.
    ///
    /// For [`WorkloadFamily::Imported`] this is the traces registered so
    /// far in this process.
    pub fn family_members(family: WorkloadFamily) -> Vec<Benchmark> {
        match family {
            WorkloadFamily::Spec95 => Benchmark::ALL.to_vec(),
            WorkloadFamily::Server => vec![Benchmark::ServerWeb, Benchmark::ServerDb],
            WorkloadFamily::H2p => vec![Benchmark::H2pRare, Benchmark::H2pChurn],
            WorkloadFamily::Imported => imports::registered(),
        }
    }

    /// The default instruction budget for `input`.
    ///
    /// Synthetic benchmarks use their calibrated spec; imported traces use
    /// the full instruction count recorded at admission (the file *is* the
    /// run, whichever input set names it).
    ///
    /// # Panics
    ///
    /// For an imported benchmark whose slot was never registered — such
    /// values cannot be parsed from user input, so reaching one is a bug.
    pub fn default_instructions(self, input: InputSet) -> u64 {
        match self {
            Benchmark::Imported(slot) => {
                imports::info(slot)
                    .unwrap_or_else(|| {
                        panic!("imported benchmark slot {slot} used before registration")
                    })
                    .total_instructions
            }
            _ => self.spec().default_instructions(input),
        }
    }

    /// The expected conditional-branch density for `input`, used to
    /// pre-size event buffers.
    ///
    /// # Panics
    ///
    /// Like [`Benchmark::default_instructions`], for unregistered imports.
    pub fn expected_cbrs_per_ki(self, input: InputSet) -> f64 {
        match self {
            Benchmark::Imported(slot) => imports::info(slot)
                .unwrap_or_else(|| {
                    panic!("imported benchmark slot {slot} used before registration")
                })
                .cbrs_per_ki(),
            _ => self.spec().cbrs_per_ki(input),
        }
    }

    /// The calibrated workload specification.
    pub fn spec(self) -> WorkloadSpec {
        match self {
            // go: only ~16% of dynamic branches are highly biased; large
            // mass of weakly biased evaluation branches, a solid correlated
            // population (board-pattern logic). Lowest accuracies of the
            // suite for every predictor.
            Benchmark::Go => WorkloadSpec {
                name: "go",
                static_sites: 7777,
                cbrs_per_ki_train: 113.0,
                cbrs_per_ki_ref: 117.0,
                mixture: Mixture {
                    strong_biased: 0.08,
                    moderate_biased: 0.20,
                    weak_biased: 0.48,
                    correlated: 0.12,
                    pattern: 0.05,
                    loop_sites: 0.05,
                },
                zipf_exponent: 0.70,
                biased_stickiness: 0.90,
                latch_noise: 0.22,
                micro_chains: 0.30,
                straight_chains: 0.25,
                fixed_iter_chains: 0.60,
                mean_iterations: 3.0,
                perturbation: Perturbation {
                    flip_fraction: 0.015,
                    drift_sd: 0.015,
                    ref_only_chains: 0.02,
                    train_only_chains: 0.01,
                },
                train_instructions: 8_000_000,
                ref_instructions: 16_000_000,
            },
            // gcc: the largest static population (38852 sites) and the
            // highest CBRs/KI — the aliasing-pressure champion. Static
            // prediction keeps helping gcc at every predictor size.
            Benchmark::Gcc => WorkloadSpec {
                name: "gcc",
                static_sites: 38852,
                cbrs_per_ki_train: 155.0,
                cbrs_per_ki_ref: 156.0,
                mixture: Mixture {
                    strong_biased: 0.62,
                    moderate_biased: 0.12,
                    weak_biased: 0.08,
                    correlated: 0.10,
                    pattern: 0.04,
                    loop_sites: 0.04,
                },
                zipf_exponent: 1.00,
                biased_stickiness: 0.95,
                latch_noise: 0.10,
                micro_chains: 0.30,
                straight_chains: 0.30,
                fixed_iter_chains: 0.70,
                mean_iterations: 8.0,
                perturbation: Perturbation {
                    flip_fraction: 0.02,
                    drift_sd: 0.015,
                    ref_only_chains: 0.03,
                    train_only_chains: 0.02,
                },
                train_instructions: 8_000_000,
                ref_instructions: 16_000_000,
            },
            // perl: interpreter dispatch — mostly biased branches with a
            // correlated dispatch population; ref input (scrabble) exercises
            // code the train input misses (worst coverage in Table 5) and
            // flips some hot branches (the cross-training victim).
            Benchmark::Perl => WorkloadSpec {
                name: "perl",
                static_sites: 9569,
                cbrs_per_ki_train: 112.0,
                cbrs_per_ki_ref: 122.0,
                mixture: Mixture {
                    strong_biased: 0.70,
                    moderate_biased: 0.10,
                    weak_biased: 0.04,
                    correlated: 0.10,
                    pattern: 0.03,
                    loop_sites: 0.03,
                },
                zipf_exponent: 1.00,
                biased_stickiness: 0.95,
                latch_noise: 0.10,
                micro_chains: 0.30,
                straight_chains: 0.30,
                fixed_iter_chains: 0.75,
                mean_iterations: 10.0,
                perturbation: Perturbation {
                    flip_fraction: 0.05,
                    drift_sd: 0.02,
                    ref_only_chains: 0.12,
                    train_only_chains: 0.03,
                },
                train_instructions: 4_000_000,
                ref_instructions: 16_000_000,
            },
            // m88ksim: 85% of dynamic branches highly biased; every
            // predictor does well and Static_95 removes most of the dynamic
            // working set. A few frequently executed branches change
            // behavior with input (the other cross-training victim).
            Benchmark::M88ksim => WorkloadSpec {
                name: "m88ksim",
                static_sites: 5365,
                cbrs_per_ki_train: 108.0,
                cbrs_per_ki_ref: 115.0,
                mixture: Mixture {
                    strong_biased: 0.94,
                    moderate_biased: 0.01,
                    weak_biased: 0.01,
                    correlated: 0.02,
                    pattern: 0.01,
                    loop_sites: 0.01,
                },
                zipf_exponent: 1.10,
                biased_stickiness: 0.95,
                latch_noise: 0.08,
                micro_chains: 0.30,
                straight_chains: 0.40,
                fixed_iter_chains: 0.75,
                mean_iterations: 24.0,
                perturbation: Perturbation {
                    flip_fraction: 0.06,
                    drift_sd: 0.015,
                    ref_only_chains: 0.02,
                    train_only_chains: 0.01,
                },
                train_instructions: 4_000_000,
                ref_instructions: 16_000_000,
            },
            // compress: small program (2238 sites); half the dynamic
            // branches are highly biased, but its *non*-biased mass is
            // largely history-predictable hash-probe logic, so history
            // predictors jump ~9 points over bimodal (Table 2's outlier).
            Benchmark::Compress => WorkloadSpec {
                name: "compress",
                static_sites: 2238,
                cbrs_per_ki_train: 108.0,
                cbrs_per_ki_ref: 123.0,
                mixture: Mixture {
                    strong_biased: 0.30,
                    moderate_biased: 0.15,
                    weak_biased: 0.30,
                    correlated: 0.15,
                    pattern: 0.05,
                    loop_sites: 0.05,
                },
                zipf_exponent: 1.10,
                biased_stickiness: 0.95,
                latch_noise: 0.05,
                micro_chains: 0.45,
                straight_chains: 0.20,
                fixed_iter_chains: 0.75,
                mean_iterations: 20.0,
                perturbation: Perturbation {
                    flip_fraction: 0.01,
                    drift_sd: 0.01,
                    ref_only_chains: 0.01,
                    train_only_chains: 0.01,
                },
                train_instructions: 4_000_000,
                ref_instructions: 16_000_000,
            },
            // ijpeg: branch-sparse (61-69 CBRs/KI), dominated by long
            // fixed-trip pixel loops; aliasing is NOT its problem, so
            // neither predictor size nor static prediction moves it much.
            Benchmark::Ijpeg => WorkloadSpec {
                name: "ijpeg",
                static_sites: 5290,
                cbrs_per_ki_train: 69.0,
                cbrs_per_ki_ref: 61.0,
                mixture: Mixture {
                    strong_biased: 0.52,
                    moderate_biased: 0.16,
                    weak_biased: 0.12,
                    correlated: 0.08,
                    pattern: 0.06,
                    loop_sites: 0.06,
                },
                zipf_exponent: 1.20,
                biased_stickiness: 0.55,
                latch_noise: 0.45,
                micro_chains: 0.15,
                straight_chains: 0.25,
                fixed_iter_chains: 0.80,
                mean_iterations: 16.0,
                perturbation: Perturbation {
                    flip_fraction: 0.015,
                    drift_sd: 0.01,
                    ref_only_chains: 0.01,
                    train_only_chains: 0.01,
                },
                train_instructions: 8_000_000,
                ref_instructions: 16_000_000,
            },
            // server_web: request-dispatch front end. High CBR/KI, a large
            // static population executed flatly (low zipf), and flat biases —
            // the moderate/weak mass dominates, so dynamic tables see
            // constant destructive aliasing. The source layer additionally
            // interleaves four of these processes at context-switch quanta.
            Benchmark::ServerWeb => WorkloadSpec {
                name: "server_web",
                static_sites: 24618,
                cbrs_per_ki_train: 178.0,
                cbrs_per_ki_ref: 182.0,
                mixture: Mixture {
                    strong_biased: 0.30,
                    moderate_biased: 0.34,
                    weak_biased: 0.22,
                    correlated: 0.08,
                    pattern: 0.03,
                    loop_sites: 0.03,
                },
                zipf_exponent: 0.55,
                biased_stickiness: 0.85,
                latch_noise: 0.25,
                micro_chains: 0.35,
                straight_chains: 0.30,
                fixed_iter_chains: 0.55,
                mean_iterations: 4.0,
                perturbation: Perturbation {
                    flip_fraction: 0.02,
                    drift_sd: 0.02,
                    ref_only_chains: 0.04,
                    train_only_chains: 0.02,
                },
                train_instructions: 8_000_000,
                ref_instructions: 16_000_000,
            },
            // server_db: storage backend probing B-trees. The largest server
            // static population, an even flatter execution profile, and more
            // weakly biased comparison branches than the front end.
            Benchmark::ServerDb => WorkloadSpec {
                name: "server_db",
                static_sites: 31247,
                cbrs_per_ki_train: 168.0,
                cbrs_per_ki_ref: 174.0,
                mixture: Mixture {
                    strong_biased: 0.26,
                    moderate_biased: 0.30,
                    weak_biased: 0.26,
                    correlated: 0.10,
                    pattern: 0.04,
                    loop_sites: 0.04,
                },
                zipf_exponent: 0.50,
                biased_stickiness: 0.85,
                latch_noise: 0.25,
                micro_chains: 0.35,
                straight_chains: 0.30,
                fixed_iter_chains: 0.55,
                mean_iterations: 5.0,
                perturbation: Perturbation {
                    flip_fraction: 0.02,
                    drift_sd: 0.02,
                    ref_only_chains: 0.04,
                    train_only_chains: 0.02,
                },
                train_instructions: 8_000_000,
                ref_instructions: 16_000_000,
            },
            // h2p_rare: Lin & Tarsa's large-footprint hard branches. A big
            // site population executed almost uniformly (very low zipf), so
            // each site trains slowly; the biased mass is thin and what bias
            // exists barely sticks (stickiness 0.10, latch_noise 0.90 ≈
            // per-execution Bernoulli draws that history cannot learn).
            Benchmark::H2pRare => WorkloadSpec {
                name: "h2p_rare",
                static_sites: 21211,
                cbrs_per_ki_train: 132.0,
                cbrs_per_ki_ref: 137.0,
                mixture: Mixture {
                    strong_biased: 0.18,
                    moderate_biased: 0.20,
                    weak_biased: 0.46,
                    correlated: 0.08,
                    pattern: 0.04,
                    loop_sites: 0.04,
                },
                zipf_exponent: 0.35,
                biased_stickiness: 0.10,
                latch_noise: 0.90,
                micro_chains: 0.30,
                straight_chains: 0.30,
                fixed_iter_chains: 0.60,
                mean_iterations: 4.0,
                perturbation: Perturbation {
                    flip_fraction: 0.02,
                    drift_sd: 0.02,
                    ref_only_chains: 0.03,
                    train_only_chains: 0.02,
                },
                train_instructions: 8_000_000,
                ref_instructions: 16_000_000,
            },
            // h2p_churn: Lin & Tarsa's high-frequency hard branches. A small
            // hot set (high zipf) of data-dependent coins: stickiness 0 and
            // latch_noise 1 make every weak/moderate site a fresh Bernoulli
            // draw per execution — unlimited training never helps.
            Benchmark::H2pChurn => WorkloadSpec {
                name: "h2p_churn",
                static_sites: 6143,
                cbrs_per_ki_train: 146.0,
                cbrs_per_ki_ref: 150.0,
                mixture: Mixture {
                    strong_biased: 0.16,
                    moderate_biased: 0.14,
                    weak_biased: 0.58,
                    correlated: 0.06,
                    pattern: 0.03,
                    loop_sites: 0.03,
                },
                zipf_exponent: 0.85,
                biased_stickiness: 0.0,
                latch_noise: 1.0,
                micro_chains: 0.30,
                straight_chains: 0.30,
                fixed_iter_chains: 0.60,
                mean_iterations: 5.0,
                perturbation: Perturbation {
                    flip_fraction: 0.015,
                    drift_sd: 0.015,
                    ref_only_chains: 0.02,
                    train_only_chains: 0.01,
                },
                train_instructions: 8_000_000,
                ref_instructions: 16_000_000,
            },
            // Imported traces have no generator spec: their stream comes off
            // disk. All structural queries go through default_instructions /
            // expected_cbrs_per_ki, which consult the import registry.
            Benchmark::Imported(slot) => panic!(
                "Benchmark::Imported({slot}) has no workload spec; imported traces replay from \
                 disk (use default_instructions/expected_cbrs_per_ki or open_source instead)"
            ),
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Benchmark {
    type Err = UnknownBenchmark;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "go" => Ok(Benchmark::Go),
            "gcc" => Ok(Benchmark::Gcc),
            "perl" => Ok(Benchmark::Perl),
            "m88ksim" => Ok(Benchmark::M88ksim),
            "compress" => Ok(Benchmark::Compress),
            "ijpeg" | "jpeg" => Ok(Benchmark::Ijpeg),
            "server_web" => Ok(Benchmark::ServerWeb),
            "server_db" => Ok(Benchmark::ServerDb),
            "h2p_rare" => Ok(Benchmark::H2pRare),
            "h2p_churn" => Ok(Benchmark::H2pChurn),
            other => imports::lookup(other).ok_or_else(|| UnknownBenchmark(other.to_string())),
        }
    }
}

/// Error for unrecognized benchmark names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownBenchmark(String);

impl fmt::Display for UnknownBenchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown benchmark '{}'", self.0)
    }
}

impl std::error::Error for UnknownBenchmark {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_site_counts_match_table_1() {
        assert_eq!(Benchmark::Go.spec().static_sites, 7777);
        assert_eq!(Benchmark::Gcc.spec().static_sites, 38852);
        assert_eq!(Benchmark::Perl.spec().static_sites, 9569);
        assert_eq!(Benchmark::M88ksim.spec().static_sites, 5365);
        assert_eq!(Benchmark::Compress.spec().static_sites, 2238);
        assert_eq!(Benchmark::Ijpeg.spec().static_sites, 5290);
    }

    #[test]
    fn cbr_targets_match_table_1() {
        let gcc = Benchmark::Gcc.spec();
        assert_eq!(gcc.cbrs_per_ki_train, 155.0);
        assert_eq!(gcc.cbrs_per_ki_ref, 156.0);
        let ijpeg = Benchmark::Ijpeg.spec();
        assert!(ijpeg.cbrs_per_ki_ref < 70.0, "ijpeg is branch-sparse");
    }

    #[test]
    fn all_specs_are_valid() {
        for b in Benchmark::SYNTHETIC {
            let s = b.spec();
            assert!(s.mixture.is_valid(), "{b}");
            assert!(s.zipf_exponent >= 0.0, "{b}");
            assert!(s.train_instructions > 0 && s.ref_instructions > 0, "{b}");
            assert!(s.perturbation.flip_fraction < 0.2, "{b}");
        }
    }

    #[test]
    fn families_partition_the_synthetic_benchmarks() {
        for b in Benchmark::ALL {
            assert_eq!(b.family(), WorkloadFamily::Spec95, "{b}");
        }
        assert_eq!(Benchmark::ServerWeb.family(), WorkloadFamily::Server);
        assert_eq!(Benchmark::H2pChurn.family(), WorkloadFamily::H2p);
        assert_eq!(Benchmark::Imported(0).family(), WorkloadFamily::Imported);
        // family_members over the synthetic families covers SYNTHETIC exactly.
        let mut members: Vec<Benchmark> = [
            WorkloadFamily::Spec95,
            WorkloadFamily::Server,
            WorkloadFamily::H2p,
        ]
        .into_iter()
        .flat_map(Benchmark::family_members)
        .collect();
        members.sort_by_key(|b| b.name());
        let mut synthetic = Benchmark::SYNTHETIC.to_vec();
        synthetic.sort_by_key(|b| b.name());
        assert_eq!(members, synthetic);
    }

    #[test]
    fn server_family_is_an_aliasing_stressor() {
        // Denser and flatter than every SPEC95 member: more CBRs/KI and a
        // lower zipf exponent (flatter site usage) than gcc, the SPEC95
        // aliasing champion.
        let gcc = Benchmark::Gcc.spec();
        for b in [Benchmark::ServerWeb, Benchmark::ServerDb] {
            let s = b.spec();
            assert!(s.cbrs_per_ki_ref > gcc.cbrs_per_ki_ref, "{b}");
            assert!(s.zipf_exponent < gcc.zipf_exponent, "{b}");
            assert!(s.static_sites > 20_000, "{b}");
        }
    }

    #[test]
    fn h2p_family_is_history_resistant_by_construction() {
        // The hard-branch families carry most dynamic mass in weakly biased
        // sites whose outcomes re-randomize (high latch_noise, low
        // stickiness): history predictors cannot latch onto them.
        for b in [Benchmark::H2pRare, Benchmark::H2pChurn] {
            let s = b.spec();
            assert!(s.mixture.weak_biased >= 0.46, "{b}");
            assert!(s.latch_noise >= 0.90, "{b}");
            assert!(s.biased_stickiness <= 0.10, "{b}");
        }
        // Rare class is flat over a big footprint; churn class is hot.
        assert!(Benchmark::H2pRare.spec().zipf_exponent < 0.5);
        assert!(Benchmark::H2pChurn.spec().zipf_exponent > 0.7);
    }

    #[test]
    fn default_budgets_come_from_specs_for_synthetic_benchmarks() {
        assert_eq!(
            Benchmark::ServerWeb.default_instructions(InputSet::Train),
            8_000_000
        );
        assert_eq!(
            Benchmark::H2pRare.default_instructions(InputSet::Ref),
            16_000_000
        );
        assert_eq!(
            Benchmark::Gcc.expected_cbrs_per_ki(InputSet::Ref),
            Benchmark::Gcc.spec().cbrs_per_ki_ref
        );
    }

    #[test]
    #[should_panic(expected = "has no workload spec")]
    fn imported_benchmarks_have_no_spec() {
        let _ = Benchmark::Imported(7).spec();
    }

    #[test]
    fn biased_mass_ordering_matches_table_2() {
        // m88ksim > perl > gcc ≈ ijpeg ≈ compress > go in strong-bias mass.
        let strong = |b: Benchmark| b.spec().mixture.strong_biased;
        assert!(strong(Benchmark::M88ksim) > strong(Benchmark::Perl));
        assert!(strong(Benchmark::Perl) > strong(Benchmark::Gcc));
        assert!(strong(Benchmark::Gcc) > strong(Benchmark::Go));
    }

    #[test]
    fn names_roundtrip() {
        for b in Benchmark::SYNTHETIC {
            assert_eq!(b.name().parse::<Benchmark>().unwrap(), b);
        }
        assert!("fortran".parse::<Benchmark>().is_err());
        assert_eq!("jpeg".parse::<Benchmark>().unwrap(), Benchmark::Ijpeg);
    }
}
