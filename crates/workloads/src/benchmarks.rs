//! The six calibrated SPECINT95 benchmark models.
//!
//! Structural targets (static branch counts, CBRs/KI, dynamic instruction
//! budgets) come straight from the paper's Table 1. Behavior mixtures are
//! calibrated so that the Table 2 characterization — the dynamic fraction of
//! highly biased branches and the relative accuracy of the five predictors —
//! lands close to the paper's measurements (see `EXPERIMENTS.md` for the
//! achieved values).
//!
//! Run lengths are scaled down from the paper's 0.5–63 *billion* instructions
//! to tens of millions (DESIGN.md §3, substitution 2).

use crate::spec::{Mixture, Perturbation, WorkloadSpec};
use std::fmt;
use std::str::FromStr;

/// The SPECINT95 programs evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// The Go-playing program: few biased branches, hardest to predict.
    Go,
    /// The GNU C compiler: the largest static branch population.
    Gcc,
    /// The Perl interpreter.
    Perl,
    /// The Motorola 88k simulator: overwhelmingly biased branches.
    M88ksim,
    /// The LZW compressor.
    Compress,
    /// The JPEG codec: branch-sparse, little aliasing.
    Ijpeg,
}

impl Benchmark {
    /// All benchmarks in the paper's Table 1 order.
    pub const ALL: [Benchmark; 6] = [
        Benchmark::Go,
        Benchmark::Gcc,
        Benchmark::Perl,
        Benchmark::M88ksim,
        Benchmark::Compress,
        Benchmark::Ijpeg,
    ];

    /// The benchmark's SPEC name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Go => "go",
            Benchmark::Gcc => "gcc",
            Benchmark::Perl => "perl",
            Benchmark::M88ksim => "m88ksim",
            Benchmark::Compress => "compress",
            Benchmark::Ijpeg => "ijpeg",
        }
    }

    /// The calibrated workload specification.
    pub fn spec(self) -> WorkloadSpec {
        match self {
            // go: only ~16% of dynamic branches are highly biased; large
            // mass of weakly biased evaluation branches, a solid correlated
            // population (board-pattern logic). Lowest accuracies of the
            // suite for every predictor.
            Benchmark::Go => WorkloadSpec {
                name: "go",
                static_sites: 7777,
                cbrs_per_ki_train: 113.0,
                cbrs_per_ki_ref: 117.0,
                mixture: Mixture {
                    strong_biased: 0.08,
                    moderate_biased: 0.20,
                    weak_biased: 0.48,
                    correlated: 0.12,
                    pattern: 0.05,
                    loop_sites: 0.05,
                },
                zipf_exponent: 0.70,
                biased_stickiness: 0.90,
                latch_noise: 0.22,
                micro_chains: 0.30,
                straight_chains: 0.25,
                fixed_iter_chains: 0.60,
                mean_iterations: 3.0,
                perturbation: Perturbation {
                    flip_fraction: 0.015,
                    drift_sd: 0.015,
                    ref_only_chains: 0.02,
                    train_only_chains: 0.01,
                },
                train_instructions: 8_000_000,
                ref_instructions: 16_000_000,
            },
            // gcc: the largest static population (38852 sites) and the
            // highest CBRs/KI — the aliasing-pressure champion. Static
            // prediction keeps helping gcc at every predictor size.
            Benchmark::Gcc => WorkloadSpec {
                name: "gcc",
                static_sites: 38852,
                cbrs_per_ki_train: 155.0,
                cbrs_per_ki_ref: 156.0,
                mixture: Mixture {
                    strong_biased: 0.62,
                    moderate_biased: 0.12,
                    weak_biased: 0.08,
                    correlated: 0.10,
                    pattern: 0.04,
                    loop_sites: 0.04,
                },
                zipf_exponent: 1.00,
                biased_stickiness: 0.95,
                latch_noise: 0.10,
                micro_chains: 0.30,
                straight_chains: 0.30,
                fixed_iter_chains: 0.70,
                mean_iterations: 8.0,
                perturbation: Perturbation {
                    flip_fraction: 0.02,
                    drift_sd: 0.015,
                    ref_only_chains: 0.03,
                    train_only_chains: 0.02,
                },
                train_instructions: 8_000_000,
                ref_instructions: 16_000_000,
            },
            // perl: interpreter dispatch — mostly biased branches with a
            // correlated dispatch population; ref input (scrabble) exercises
            // code the train input misses (worst coverage in Table 5) and
            // flips some hot branches (the cross-training victim).
            Benchmark::Perl => WorkloadSpec {
                name: "perl",
                static_sites: 9569,
                cbrs_per_ki_train: 112.0,
                cbrs_per_ki_ref: 122.0,
                mixture: Mixture {
                    strong_biased: 0.70,
                    moderate_biased: 0.10,
                    weak_biased: 0.04,
                    correlated: 0.10,
                    pattern: 0.03,
                    loop_sites: 0.03,
                },
                zipf_exponent: 1.00,
                biased_stickiness: 0.95,
                latch_noise: 0.10,
                micro_chains: 0.30,
                straight_chains: 0.30,
                fixed_iter_chains: 0.75,
                mean_iterations: 10.0,
                perturbation: Perturbation {
                    flip_fraction: 0.05,
                    drift_sd: 0.02,
                    ref_only_chains: 0.12,
                    train_only_chains: 0.03,
                },
                train_instructions: 4_000_000,
                ref_instructions: 16_000_000,
            },
            // m88ksim: 85% of dynamic branches highly biased; every
            // predictor does well and Static_95 removes most of the dynamic
            // working set. A few frequently executed branches change
            // behavior with input (the other cross-training victim).
            Benchmark::M88ksim => WorkloadSpec {
                name: "m88ksim",
                static_sites: 5365,
                cbrs_per_ki_train: 108.0,
                cbrs_per_ki_ref: 115.0,
                mixture: Mixture {
                    strong_biased: 0.94,
                    moderate_biased: 0.01,
                    weak_biased: 0.01,
                    correlated: 0.02,
                    pattern: 0.01,
                    loop_sites: 0.01,
                },
                zipf_exponent: 1.10,
                biased_stickiness: 0.95,
                latch_noise: 0.08,
                micro_chains: 0.30,
                straight_chains: 0.40,
                fixed_iter_chains: 0.75,
                mean_iterations: 24.0,
                perturbation: Perturbation {
                    flip_fraction: 0.06,
                    drift_sd: 0.015,
                    ref_only_chains: 0.02,
                    train_only_chains: 0.01,
                },
                train_instructions: 4_000_000,
                ref_instructions: 16_000_000,
            },
            // compress: small program (2238 sites); half the dynamic
            // branches are highly biased, but its *non*-biased mass is
            // largely history-predictable hash-probe logic, so history
            // predictors jump ~9 points over bimodal (Table 2's outlier).
            Benchmark::Compress => WorkloadSpec {
                name: "compress",
                static_sites: 2238,
                cbrs_per_ki_train: 108.0,
                cbrs_per_ki_ref: 123.0,
                mixture: Mixture {
                    strong_biased: 0.30,
                    moderate_biased: 0.15,
                    weak_biased: 0.30,
                    correlated: 0.15,
                    pattern: 0.05,
                    loop_sites: 0.05,
                },
                zipf_exponent: 1.10,
                biased_stickiness: 0.95,
                latch_noise: 0.05,
                micro_chains: 0.45,
                straight_chains: 0.20,
                fixed_iter_chains: 0.75,
                mean_iterations: 20.0,
                perturbation: Perturbation {
                    flip_fraction: 0.01,
                    drift_sd: 0.01,
                    ref_only_chains: 0.01,
                    train_only_chains: 0.01,
                },
                train_instructions: 4_000_000,
                ref_instructions: 16_000_000,
            },
            // ijpeg: branch-sparse (61-69 CBRs/KI), dominated by long
            // fixed-trip pixel loops; aliasing is NOT its problem, so
            // neither predictor size nor static prediction moves it much.
            Benchmark::Ijpeg => WorkloadSpec {
                name: "ijpeg",
                static_sites: 5290,
                cbrs_per_ki_train: 69.0,
                cbrs_per_ki_ref: 61.0,
                mixture: Mixture {
                    strong_biased: 0.52,
                    moderate_biased: 0.16,
                    weak_biased: 0.12,
                    correlated: 0.08,
                    pattern: 0.06,
                    loop_sites: 0.06,
                },
                zipf_exponent: 1.20,
                biased_stickiness: 0.55,
                latch_noise: 0.45,
                micro_chains: 0.15,
                straight_chains: 0.25,
                fixed_iter_chains: 0.80,
                mean_iterations: 16.0,
                perturbation: Perturbation {
                    flip_fraction: 0.015,
                    drift_sd: 0.01,
                    ref_only_chains: 0.01,
                    train_only_chains: 0.01,
                },
                train_instructions: 8_000_000,
                ref_instructions: 16_000_000,
            },
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Benchmark {
    type Err = UnknownBenchmark;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "go" => Ok(Benchmark::Go),
            "gcc" => Ok(Benchmark::Gcc),
            "perl" => Ok(Benchmark::Perl),
            "m88ksim" => Ok(Benchmark::M88ksim),
            "compress" => Ok(Benchmark::Compress),
            "ijpeg" | "jpeg" => Ok(Benchmark::Ijpeg),
            other => Err(UnknownBenchmark(other.to_string())),
        }
    }
}

/// Error for unrecognized benchmark names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownBenchmark(String);

impl fmt::Display for UnknownBenchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown benchmark '{}'", self.0)
    }
}

impl std::error::Error for UnknownBenchmark {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_site_counts_match_table_1() {
        assert_eq!(Benchmark::Go.spec().static_sites, 7777);
        assert_eq!(Benchmark::Gcc.spec().static_sites, 38852);
        assert_eq!(Benchmark::Perl.spec().static_sites, 9569);
        assert_eq!(Benchmark::M88ksim.spec().static_sites, 5365);
        assert_eq!(Benchmark::Compress.spec().static_sites, 2238);
        assert_eq!(Benchmark::Ijpeg.spec().static_sites, 5290);
    }

    #[test]
    fn cbr_targets_match_table_1() {
        let gcc = Benchmark::Gcc.spec();
        assert_eq!(gcc.cbrs_per_ki_train, 155.0);
        assert_eq!(gcc.cbrs_per_ki_ref, 156.0);
        let ijpeg = Benchmark::Ijpeg.spec();
        assert!(ijpeg.cbrs_per_ki_ref < 70.0, "ijpeg is branch-sparse");
    }

    #[test]
    fn all_specs_are_valid() {
        for b in Benchmark::ALL {
            let s = b.spec();
            assert!(s.mixture.is_valid(), "{b}");
            assert!(s.zipf_exponent >= 0.0, "{b}");
            assert!(s.train_instructions > 0 && s.ref_instructions > 0, "{b}");
            assert!(s.perturbation.flip_fraction < 0.2, "{b}");
        }
    }

    #[test]
    fn biased_mass_ordering_matches_table_2() {
        // m88ksim > perl > gcc ≈ ijpeg ≈ compress > go in strong-bias mass.
        let strong = |b: Benchmark| b.spec().mixture.strong_biased;
        assert!(strong(Benchmark::M88ksim) > strong(Benchmark::Perl));
        assert!(strong(Benchmark::Perl) > strong(Benchmark::Gcc));
        assert!(strong(Benchmark::Gcc) > strong(Benchmark::Go));
    }

    #[test]
    fn names_roundtrip() {
        for b in Benchmark::ALL {
            assert_eq!(b.name().parse::<Benchmark>().unwrap(), b);
        }
        assert!("fortran".parse::<Benchmark>().is_err());
        assert_eq!("jpeg".parse::<Benchmark>().unwrap(), Benchmark::Ijpeg);
    }
}
