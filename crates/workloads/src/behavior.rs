//! Per-site branch behavior models.
//!
//! The models are chosen so the synthetic stream has the *entropy structure*
//! of real programs, which is what separates history-indexed predictors from
//! bimodal ones:
//!
//! * data-dependent branches are **sticky**: a condition tested inside a
//!   loop usually keeps its value for the whole loop run, so later
//!   iterations are predictable from the outcome's appearance in the global
//!   history even though the per-run draw is random;
//! * **correlated** branches copy (or negate) the outcome of a recent
//!   earlier branch — the classic `if (x) … if (!x)` pattern;
//! * loop exits and short patterns repeat deterministically.

use sdbp_util::rng::Rng;

/// The behavior class of one static branch site.
///
/// Behaviors are pure functions of `(site state, global history, rng)` so a
/// site can be replayed deterministically from a seed.
#[derive(Debug, Clone, PartialEq)]
pub enum BranchBehavior {
    /// A biased, per-activation-sticky branch driven by the chain's hidden
    /// *variant* state.
    ///
    /// At the first execution within a chain activation the outcome is
    /// latched: with probability `1 - noise` it is a **fixed function of the
    /// activation's variant** (`hash(salt, variant) < p_taken` — the same
    /// variant always produces the same latch, the way the same input data
    /// drives the same path through a loop body), otherwise a fresh
    /// `Bernoulli(p_taken)` draw. Later executions in the activation repeat
    /// the latch with probability `stickiness`.
    ///
    /// A bimodal predictor caps out near the marginal bias; a history
    /// predictor can recover both the in-loop repeats and — because the
    /// variant is identifiable from neighboring branches' outcomes — much of
    /// the deterministic component.
    Biased {
        /// Marginal probability of the taken outcome.
        p_taken: f64,
        /// Probability that a repeat execution reuses the latched outcome.
        stickiness: f64,
        /// Probability that the latch ignores the variant (pure noise).
        noise: f64,
        /// Per-site salt for the variant hash.
        salt: u64,
    },
    /// Deterministic loop-style cycle: taken `period - 1` times, then
    /// not-taken once.
    Loop {
        /// Total cycle length (≥ 2).
        period: u32,
    },
    /// A repeating explicit outcome pattern.
    Pattern {
        /// The outcome cycle; must be non-empty.
        pattern: Vec<bool>,
    },
    /// Copies the outcome of the branch executed `offset` positions earlier
    /// in the global stream, optionally inverted, with independent noise —
    /// cross-branch correlation in its purest form.
    FollowGlobal {
        /// How far back in the global outcome stream to look (1–32).
        offset: u32,
        /// Invert the copied outcome.
        invert: bool,
        /// Probability of flipping the result anyway.
        noise: f64,
    },
    /// Outcome is the parity of the newest `depth` global branch outcomes
    /// with noise — a harder correlation (kept for custom workloads; the
    /// calibrated benchmarks use [`BranchBehavior::FollowGlobal`]).
    Correlated {
        /// How many recent global outcomes participate (1 ≤ depth ≤ 16).
        depth: u32,
        /// Probability that the computed outcome is flipped.
        noise: f64,
        /// Invert the parity.
        invert: bool,
    },
    /// The chain back-edge: outcome decided by the traversal engine
    /// (taken while the chain has iterations left).
    LoopBack,
}

impl BranchBehavior {
    /// Computes the next outcome for this site.
    ///
    /// `global_history` carries the most recent branch outcomes of the whole
    /// program, newest in bit 0 (the same view a ghist register has). The
    /// generator resets `state.sticky` at every chain activation.
    ///
    /// # Panics
    ///
    /// Panics for [`BranchBehavior::LoopBack`], whose outcome is owned by
    /// the traversal engine.
    pub fn next<R: Rng>(
        &self,
        state: &mut SiteState,
        global_history: u64,
        variant: u32,
        rng: &mut R,
    ) -> bool {
        match self {
            BranchBehavior::Biased {
                p_taken,
                stickiness,
                noise,
                salt,
            } => match state.sticky {
                Some(latched) if rng.bernoulli(*stickiness) => latched,
                Some(_) => rng.bernoulli(*p_taken),
                None => {
                    let v = if rng.bernoulli(*noise) {
                        rng.bernoulli(*p_taken)
                    } else {
                        variant_u01(*salt, variant) < *p_taken
                    };
                    state.sticky = Some(v);
                    v
                }
            },
            BranchBehavior::Loop { period } => {
                let pos = state.counter % period;
                state.counter = state.counter.wrapping_add(1);
                pos != period - 1
            }
            BranchBehavior::Pattern { pattern } => {
                let pos = state.counter as usize % pattern.len();
                state.counter = state.counter.wrapping_add(1);
                pattern[pos]
            }
            BranchBehavior::FollowGlobal {
                offset,
                invert,
                noise,
            } => {
                let bit = (global_history >> (offset - 1)) & 1 == 1;
                let outcome = bit ^ invert;
                if rng.bernoulli(*noise) {
                    !outcome
                } else {
                    outcome
                }
            }
            BranchBehavior::Correlated {
                depth,
                noise,
                invert,
            } => {
                let mask = (1u64 << depth) - 1;
                let parity = (global_history & mask).count_ones() % 2 == 1;
                let outcome = parity ^ invert;
                if rng.bernoulli(*noise) {
                    !outcome
                } else {
                    outcome
                }
            }
            BranchBehavior::LoopBack => {
                panic!("LoopBack outcomes are resolved by the traversal engine")
            }
        }
    }

    /// The long-run taken probability of the behavior, ignoring
    /// correlations (used for calibration sanity checks). `None` for
    /// [`BranchBehavior::LoopBack`], whose rate depends on the chain
    /// iteration distribution, and for [`BranchBehavior::FollowGlobal`],
    /// whose rate mirrors the source branch.
    pub fn expected_taken_rate(&self) -> Option<f64> {
        match self {
            // The variant-hash thresholding has marginal rate ≈ p_taken in
            // expectation over salts; per-site rates are lumpier, as real
            // branch biases are.
            BranchBehavior::Biased { p_taken, .. } => Some(*p_taken),
            BranchBehavior::Loop { period } => Some((*period as f64 - 1.0) / *period as f64),
            BranchBehavior::Pattern { pattern } => {
                let taken = pattern.iter().filter(|&&t| t).count();
                Some(taken as f64 / pattern.len() as f64)
            }
            BranchBehavior::Correlated { .. } => Some(0.5),
            BranchBehavior::FollowGlobal { .. } | BranchBehavior::LoopBack => None,
        }
    }

    /// Whether this behavior is *history-predictable*: a predictor that
    /// observes global history can in principle beat the bias cap on it.
    pub fn is_history_predictable(&self) -> bool {
        match self {
            BranchBehavior::Biased {
                stickiness, noise, ..
            } => *stickiness > 0.0 || *noise < 1.0,
            BranchBehavior::Loop { .. }
            | BranchBehavior::Pattern { .. }
            | BranchBehavior::FollowGlobal { .. }
            | BranchBehavior::Correlated { .. }
            | BranchBehavior::LoopBack => true,
        }
    }
}

/// Maps `(salt, variant)` to a fixed uniform value in `[0, 1)` — the
/// deterministic latch component of [`BranchBehavior::Biased`].
/// SplitMix64-style finalizer: same inputs, same value.
fn variant_u01(salt: u64, variant: u32) -> f64 {
    let mut z = salt ^ (variant as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Mutable per-site runtime state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SiteState {
    /// Behavior-private cycle counter (loop / pattern position).
    pub counter: u32,
    /// The activation-latched outcome of a sticky biased site; cleared by
    /// the traversal engine at each chain activation.
    pub sticky: Option<bool>,
}

impl SiteState {
    /// Clears the activation-scoped state (called at chain activation).
    pub fn begin_activation(&mut self) {
        self.sticky = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbp_util::rng::Xoshiro256StarStar;

    fn rng() -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(7)
    }

    #[test]
    fn biased_marginal_rate_matches_probability() {
        let b = BranchBehavior::Biased {
            p_taken: 0.9,
            stickiness: 0.0,
            noise: 1.0,
            salt: 0,
        };
        let mut st = SiteState::default();
        let mut r = rng();
        let n = 50_000;
        let mut taken = 0;
        for _ in 0..n {
            st.begin_activation();
            if b.next(&mut st, 0, 0, &mut r) {
                taken += 1;
            }
        }
        let rate = taken as f64 / n as f64;
        assert!((rate - 0.9).abs() < 0.01, "rate {rate}");
        assert_eq!(b.expected_taken_rate(), Some(0.9));
    }

    #[test]
    fn sticky_biased_repeats_within_activation() {
        let b = BranchBehavior::Biased {
            p_taken: 0.5,
            stickiness: 1.0,
            noise: 1.0,
            salt: 0,
        };
        let mut r = rng();
        for _ in 0..50 {
            let mut st = SiteState::default();
            let first = b.next(&mut st, 0, 0, &mut r);
            for _ in 0..10 {
                assert_eq!(b.next(&mut st, 0, 0, &mut r), first);
            }
        }
    }

    #[test]
    fn fresh_activation_redraws() {
        let b = BranchBehavior::Biased {
            p_taken: 0.5,
            stickiness: 1.0,
            noise: 1.0,
            salt: 0,
        };
        let mut r = rng();
        let mut st = SiteState::default();
        let mut seen = [false; 2];
        for _ in 0..100 {
            st.begin_activation();
            seen[usize::from(b.next(&mut st, 0, 0, &mut r))] = true;
        }
        assert!(
            seen[0] && seen[1],
            "a fair sticky coin varies across activations"
        );
    }

    #[test]
    fn loop_cycles_deterministically() {
        let b = BranchBehavior::Loop { period: 4 };
        let mut st = SiteState::default();
        let mut r = rng();
        let outcomes: Vec<bool> = (0..8).map(|_| b.next(&mut st, 0, 0, &mut r)).collect();
        assert_eq!(outcomes, [true, true, true, false, true, true, true, false]);
        assert_eq!(b.expected_taken_rate(), Some(0.75));
    }

    #[test]
    fn pattern_repeats() {
        let b = BranchBehavior::Pattern {
            pattern: vec![true, false, false],
        };
        let mut st = SiteState::default();
        let mut r = rng();
        let outcomes: Vec<bool> = (0..6).map(|_| b.next(&mut st, 0, 0, &mut r)).collect();
        assert_eq!(outcomes, [true, false, false, true, false, false]);
        let rate = b.expected_taken_rate().unwrap();
        assert!((rate - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn follow_global_copies_history_bit() {
        let b = BranchBehavior::FollowGlobal {
            offset: 3,
            invert: false,
            noise: 0.0,
        };
        let mut st = SiteState::default();
        let mut r = rng();
        // Bit 2 of the history (offset 3 => third-newest outcome).
        assert!(b.next(&mut st, 0b100, 0, &mut r));
        assert!(!b.next(&mut st, 0b011, 0, &mut r));
        let inv = BranchBehavior::FollowGlobal {
            offset: 1,
            invert: true,
            noise: 0.0,
        };
        assert!(!inv.next(&mut st, 0b1, 0, &mut r));
        assert!(inv.next(&mut st, 0b0, 0, &mut r));
        assert_eq!(b.expected_taken_rate(), None);
        assert!(b.is_history_predictable());
    }

    #[test]
    fn correlated_follows_history_parity() {
        let b = BranchBehavior::Correlated {
            depth: 3,
            noise: 0.0,
            invert: false,
        };
        let mut st = SiteState::default();
        let mut r = rng();
        assert!(!b.next(&mut st, 0b000, 0, &mut r));
        assert!(b.next(&mut st, 0b001, 0, &mut r));
        assert!(!b.next(&mut st, 0b011, 0, &mut r));
        assert!(b.next(&mut st, 0b111, 0, &mut r));
        // Bits beyond `depth` must not matter.
        assert!(b.next(&mut st, 0b1000_0001, 0, &mut r));
    }

    #[test]
    fn noise_flips_sometimes() {
        let b = BranchBehavior::FollowGlobal {
            offset: 1,
            invert: false,
            noise: 0.25,
        };
        let mut st = SiteState::default();
        let mut r = rng();
        let n = 20_000;
        let flipped = (0..n).filter(|_| !b.next(&mut st, 0b1, 0, &mut r)).count();
        let rate = flipped as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "flip rate {rate}");
    }

    #[test]
    #[should_panic(expected = "traversal engine")]
    fn loopback_next_panics() {
        let b = BranchBehavior::LoopBack;
        let mut st = SiteState::default();
        let mut r = rng();
        let _ = b.next(&mut st, 0, 0, &mut r);
    }

    #[test]
    fn history_predictability_classification() {
        assert!(!BranchBehavior::Biased {
            p_taken: 0.99,
            stickiness: 0.0,
            noise: 1.0,
            salt: 0
        }
        .is_history_predictable());
        assert!(BranchBehavior::Biased {
            p_taken: 0.99,
            stickiness: 0.9,
            noise: 1.0,
            salt: 0
        }
        .is_history_predictable());
        assert!(BranchBehavior::Loop { period: 3 }.is_history_predictable());
        assert!(BranchBehavior::LoopBack.is_history_predictable());
    }

    #[test]
    fn begin_activation_clears_sticky_only() {
        let mut st = SiteState {
            counter: 7,
            sticky: Some(true),
        };
        st.begin_activation();
        assert_eq!(st.sticky, None);
        assert_eq!(st.counter, 7, "cycle position persists across activations");
    }
}
