//! The streaming event generator.

use crate::behavior::{BranchBehavior, SiteState};
use crate::program::ProgramModel;
use sdbp_trace::{BranchEvent, BranchSource};
use sdbp_util::rng::{Rng, Xoshiro256StarStar};

/// Streams branch events from a [`ProgramModel`].
///
/// The traversal engine activates one chain at a time (sampled by chain
/// weight), runs its site sequence for a sampled iteration count, resolves
/// back-edge outcomes from the remaining iterations, and lets every other
/// site's [`BranchBehavior`] produce its outcome from the site state, the
/// live global history, and the seeded RNG. The generator is infinite — cap
/// it with [`BranchSource::take_instructions`].
///
/// # Examples
///
/// ```
/// use sdbp_trace::BranchSource;
/// use sdbp_workloads::{Benchmark, InputSet, Workload};
///
/// let w = Workload::spec95(Benchmark::Compress);
/// let mut g = w.generator(InputSet::Train, 1).take_instructions(10_000);
/// let trace = g.collect_trace();
/// assert!(trace.len() > 500);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    program: ProgramModel,
    rng: Xoshiro256StarStar,
    site_states: Vec<SiteState>,
    global_history: u64,
    current_chain: Option<ChainCursor>,
    last_chain: Option<usize>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ChainCursor {
    chain: usize,
    position: usize,
    iterations_left: u32,
    variant: u32,
}

impl WorkloadGenerator {
    /// Creates a generator over `program`, seeded deterministically.
    ///
    /// The traversal RNG is derived from `seed` on a sub-stream disjoint
    /// from the streams used to materialize the program, so regenerating the
    /// model does not perturb the event sequence.
    pub fn new(program: ProgramModel, seed: u64) -> Self {
        let base = Xoshiro256StarStar::seed_from_u64(seed ^ 0x5d_b0_4b_5a);
        let site_states = vec![SiteState::default(); program.sites().len()];
        Self {
            program,
            rng: base.substream(8),
            site_states,
            global_history: 0,
            current_chain: None,
            last_chain: None,
        }
    }

    /// The underlying program model.
    pub fn program(&self) -> &ProgramModel {
        &self.program
    }

    /// The live global outcome history (newest outcome in bit 0) — exposed
    /// for tests and for behavior-model debugging.
    pub fn global_history(&self) -> u64 {
        self.global_history
    }

    /// Produces the next event. The stream is infinite, so unlike
    /// [`BranchSource::next_event`] there is no `Option` to unwrap — the
    /// batched [`BranchSource::fill_events`] loop compiles down to straight
    /// traversal work.
    fn generate(&mut self) -> BranchEvent {
        let cursor = match self.current_chain {
            Some(c) => c,
            None => {
                // Control flow is a Markov walk over the chain graph; the
                // first activation — and occasional phase changes — seed it
                // from the global weight distribution, which keeps program
                // coverage broad without adding much history entropy.
                let chain = match self.last_chain {
                    Some(prev) if !self.rng.bernoulli(0.008) => {
                        self.program.sample_successor(prev, &mut self.rng)
                    }
                    _ => self.program.sample_chain(&mut self.rng),
                };
                self.last_chain = Some(chain);
                // A fresh activation clears the sticky draws of its sites.
                for &site in &self.program.chains()[chain].sites {
                    self.site_states[site].begin_activation();
                }
                let model = &self.program.chains()[chain];
                let iterations_left = model.sample_iters(&mut self.rng);
                let variant = model.sample_variant(&mut self.rng);
                ChainCursor {
                    chain,
                    position: 0,
                    iterations_left,
                    variant,
                }
            }
        };

        let chain_model = &self.program.chains()[cursor.chain];
        let site_index = chain_model.sites[cursor.position];
        let site = &self.program.sites()[site_index];
        let is_last = cursor.position + 1 == chain_model.sites.len();

        let taken = match &site.behavior {
            BranchBehavior::LoopBack => cursor.iterations_left > 1,
            behavior => behavior.next(
                &mut self.site_states[site_index],
                self.global_history,
                cursor.variant,
                &mut self.rng,
            ),
        };

        // Advance the cursor.
        self.current_chain = if is_last {
            if cursor.iterations_left > 1 {
                Some(ChainCursor {
                    position: 0,
                    iterations_left: cursor.iterations_left - 1,
                    ..cursor
                })
            } else {
                None
            }
        } else {
            Some(ChainCursor {
                position: cursor.position + 1,
                ..cursor
            })
        };

        self.global_history = (self.global_history << 1) | u64::from(taken);
        BranchEvent::new(site.pc, taken, site.gap)
    }
}

impl BranchSource for WorkloadGenerator {
    fn next_event(&mut self) -> Option<BranchEvent> {
        Some(self.generate())
    }

    fn fill_events(&mut self, buf: &mut Vec<BranchEvent>, max: usize) -> usize {
        buf.reserve(max);
        for _ in 0..max {
            let e = self.generate();
            buf.push(e);
        }
        max
    }

    fn label(&self) -> &str {
        self.program.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{InputSet, Workload};
    use crate::Benchmark;
    use sdbp_trace::TraceStats;

    fn generator(b: Benchmark, input: InputSet, seed: u64) -> WorkloadGenerator {
        Workload::spec95(b).generator(input, seed)
    }

    #[test]
    fn stream_is_deterministic() {
        let mut a = generator(Benchmark::Go, InputSet::Train, 3);
        let mut b = generator(Benchmark::Go, InputSet::Train, 3);
        for _ in 0..5000 {
            assert_eq!(a.next_event(), b.next_event());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = generator(Benchmark::Go, InputSet::Train, 3);
        let mut b = generator(Benchmark::Go, InputSet::Train, 4);
        let same = (0..1000)
            .filter(|_| a.next_event() == b.next_event())
            .count();
        assert!(same < 1000, "streams should diverge");
    }

    #[test]
    fn cbr_rate_is_near_target() {
        for bench in [Benchmark::Gcc, Benchmark::Ijpeg] {
            let spec = bench.spec();
            let gen = generator(bench, InputSet::Ref, 1).take_instructions(2_000_000);
            let stats = TraceStats::from_source(gen);
            let cbr = stats.cbrs_per_ki();
            let target = spec.cbrs_per_ki_ref;
            assert!(
                (cbr - target).abs() / target < 0.15,
                "{}: cbr {cbr:.1}, target {target}",
                spec.name
            );
        }
    }

    #[test]
    fn most_sites_get_executed() {
        let gen = generator(Benchmark::Compress, InputSet::Train, 1).take_instructions(3_000_000);
        let stats = TraceStats::from_source(gen);
        let frac = stats.static_branches() as f64 / Benchmark::Compress.spec().static_sites as f64;
        // Hot-code concentration (two-level Zipf) leaves the cold tail
        // unexecuted in a short run; half the sites within 3M instructions
        // is not expected, a third is.
        assert!(frac > 0.3, "only {frac:.2} of sites executed");
    }

    #[test]
    fn backedges_are_mostly_taken_for_loopy_chains() {
        // ijpeg has long loops: its dynamic taken-rate should lean taken.
        let gen = generator(Benchmark::Ijpeg, InputSet::Ref, 1).take_instructions(1_000_000);
        let stats = TraceStats::from_source(gen);
        let taken: u64 = stats.iter().map(|(_, s)| s.taken).sum();
        let rate = taken as f64 / stats.dynamic_branches() as f64;
        assert!(rate > 0.5, "dynamic taken rate {rate}");
    }

    #[test]
    fn global_history_tracks_outcomes() {
        let mut g = generator(Benchmark::Compress, InputSet::Train, 9);
        let mut expect = 0u64;
        for _ in 0..200 {
            let e = g.next_event().unwrap();
            expect = (expect << 1) | u64::from(e.taken);
            assert_eq!(g.global_history(), expect);
        }
    }

    #[test]
    fn fill_events_matches_next_event_for_every_benchmark() {
        for bench in Benchmark::ALL {
            for input in [InputSet::Train, InputSet::Ref] {
                let mut chunked = generator(bench, input, 7);
                let mut single = generator(bench, input, 7);
                let mut buf = Vec::new();
                // Uneven chunk sizes exercise chain-boundary crossings.
                for chunk in [1usize, 3, 128, 1000, 7] {
                    buf.clear();
                    assert_eq!(chunked.fill_events(&mut buf, chunk), chunk);
                    for (i, e) in buf.iter().enumerate() {
                        assert_eq!(
                            single.next_event().as_ref(),
                            Some(e),
                            "{bench:?}.{input:?} event {i} of chunk {chunk}"
                        );
                    }
                }
                assert_eq!(chunked.global_history(), single.global_history());
            }
        }
    }

    #[test]
    fn label_is_benchmark_dot_input() {
        let g = generator(Benchmark::Perl, InputSet::Ref, 0);
        assert_eq!(g.label(), "perl.ref");
    }
}
