//! Diagnostic: per-behavior-class accuracy of each predictor on one
//! benchmark — used to debug workload calibration, not a paper artifact.

use sdbp_core::{CombinedPredictor, Simulator};
use sdbp_predictors::{PredictorConfig, PredictorKind};
use sdbp_trace::BranchSource;
use sdbp_workloads::{Benchmark, BranchBehavior, InputSet, Workload};
use std::collections::HashMap;

fn class_of(b: &BranchBehavior) -> &'static str {
    match b {
        BranchBehavior::Biased { p_taken, .. } => {
            let bias = p_taken.max(1.0 - p_taken);
            if bias > 0.95 {
                "strong"
            } else if bias > 0.80 {
                "moderate"
            } else {
                "weak"
            }
        }
        BranchBehavior::Loop { .. } => "loop",
        BranchBehavior::Pattern { .. } => "pattern",
        BranchBehavior::FollowGlobal { .. } => "follow",
        BranchBehavior::Correlated { .. } => "correlated",
        BranchBehavior::LoopBack => "backedge",
    }
}

fn main() {
    let bench: Benchmark = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "m88ksim".into())
        .parse()
        .expect("benchmark name");
    let kind: PredictorKind = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "gshare".into())
        .parse()
        .expect("predictor kind");
    let size: usize = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8192);

    let workload = Workload::spec95(bench);
    let program = workload.program(InputSet::Ref, 2000);
    let class_by_pc: HashMap<u64, &'static str> = program
        .sites()
        .iter()
        .map(|s| (s.pc.0, class_of(&s.behavior)))
        .collect();

    let source = workload
        .generator(InputSet::Ref, 2000)
        .take_instructions(6_000_000);
    let mut predictor =
        CombinedPredictor::pure_dynamic(PredictorConfig::new(kind, size).unwrap().build());
    let mut per_class: HashMap<&'static str, (u64, u64)> = HashMap::new();
    let stats = Simulator::new().run_with_observer(source, &mut predictor, |event, res| {
        let class = class_by_pc.get(&event.pc.0).copied().unwrap_or("?");
        let entry = per_class.entry(class).or_default();
        entry.0 += 1;
        entry.1 += u64::from(res.predicted_taken == event.taken);
    });

    println!(
        "{bench} / {kind} {size}B: overall acc {:.2}%  misp/KI {:.2}  collisions {}",
        stats.accuracy() * 100.0,
        stats.misp_per_ki(),
        stats.collisions.total
    );
    let mut rows: Vec<_> = per_class.into_iter().collect();
    rows.sort_by_key(|(_, (n, _))| std::cmp::Reverse(*n));
    for (class, (n, correct)) in rows {
        println!(
            "  {class:<10} {:>9} execs ({:>5.1}%)  acc {:>6.2}%",
            n,
            n as f64 / stats.branches as f64 * 100.0,
            correct as f64 / n as f64 * 100.0
        );
    }
}
