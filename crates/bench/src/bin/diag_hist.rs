//! Diagnostic: gshare accuracy vs history length (calibration aid).

use sdbp_core::{CombinedPredictor, Simulator};
use sdbp_predictors::Gshare;
use sdbp_trace::BranchSource;
use sdbp_workloads::{Benchmark, InputSet, Workload};

fn main() {
    let bench: Benchmark = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "compress".into())
        .parse()
        .expect("benchmark");
    let size: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8192);
    let workload = Workload::spec95(bench);
    let max_bits = (size * 4).trailing_zeros();
    for hist in [2u32, 4, 6, 8, 10, 12, max_bits] {
        if hist > max_bits {
            continue;
        }
        let source = workload
            .generator(InputSet::Ref, 2000)
            .take_instructions(6_000_000);
        let mut p = CombinedPredictor::pure_dynamic(Box::new(Gshare::with_history_len(size, hist)));
        let stats = Simulator::new().run(source, &mut p);
        println!(
            "{bench} gshare {size}B hist={hist:>2}: acc {:.2}%  misp/KI {:.2}  collisions {}",
            stats.accuracy() * 100.0,
            stats.misp_per_ki(),
            stats.collisions.total
        );
    }
}
