//! Ablation E — the McFarling predictor family comparison. See
//! [`sdbp_bench::experiments::ablate_mcfarling`].
fn main() {
    let lab = sdbp_core::Lab::new();
    println!("{}", sdbp_bench::experiments::ablate_mcfarling(&lab));
}
