//! Ablation D — static prediction vs doubling the predictor size. See
//! [`sdbp_bench::experiments::ablate_doubling`].
fn main() {
    let lab = sdbp_core::Lab::new();
    println!("{}", sdbp_bench::experiments::ablate_doubling(&lab));
}
