//! Diagnostic: per-layer timing of the simulation kernel for gshare-4KB on
//! one benchmark stream — raw table loop, enum dispatch, combined resolve,
//! full simulator — to localize where the per-branch time goes.

use sdbp_bench::kernel::ReferenceGshare;
use sdbp_core::{ArtifactCache, CombinedPredictor, Simulator};
use sdbp_passes::{FnPass, PassRunner};
use sdbp_predictors::{AnyPredictor, DynamicPredictor, Gshare};
use sdbp_trace::{BranchEvent, SliceSource};
use sdbp_workloads::{Benchmark, InputSet};
use std::hint::black_box;
use std::time::Instant;

#[allow(clippy::needless_range_loop)]
fn main() {
    let cache = ArtifactCache::new();
    let events = cache.events(Benchmark::Gcc, InputSet::Ref, sdbp_bench::SEED, 8_000_000);
    let n = events.len() as f64;
    let reps = 5;

    let time = |label: &str, f: &mut dyn FnMut() -> u64| {
        let mut best = f64::INFINITY;
        let mut out = 0;
        for _ in 0..reps {
            let started = Instant::now();
            out = black_box(f());
            best = best.min(started.elapsed().as_secs_f64());
        }
        println!(
            "{label:<34} {:>7.2} Mbr/s  {:>6.2} ns/branch  (check {out})",
            n / best / 1e6,
            best / n * 1e9
        );
    };

    time("packed gshare, concrete loop", &mut || {
        let mut p = Gshare::new(4096);
        let mut misses = 0u64;
        for e in events.iter() {
            let pred = p.predict(e.pc);
            misses += u64::from(pred.taken != e.taken);
            p.update(e.pc, e.taken);
        }
        misses
    });

    time("reference gshare, concrete loop", &mut || {
        let mut p = ReferenceGshare::new(4096);
        let mut misses = 0u64;
        for e in events.iter() {
            let pred = p.predict(e.pc);
            misses += u64::from(pred.taken != e.taken);
            p.update(e.pc, e.taken);
        }
        misses
    });

    time("reference gshare, Box<dyn> loop", &mut || {
        let boxed: Box<dyn DynamicPredictor> = Box::new(ReferenceGshare::new(4096));
        let mut p = black_box(boxed);
        let mut misses = 0u64;
        for e in events.iter() {
            let pred = p.predict(e.pc);
            misses += u64::from(pred.taken != e.taken);
            p.update(e.pc, e.taken);
        }
        misses
    });

    time("packed gshare, AnyPredictor loop", &mut || {
        let mut p: AnyPredictor = Gshare::new(4096).into();
        let mut misses = 0u64;
        for e in events.iter() {
            let pred = p.predict(e.pc);
            misses += u64::from(pred.taken != e.taken);
            p.update(e.pc, e.taken);
        }
        misses
    });

    time("packed gshare, resolve loop", &mut || {
        let mut p = CombinedPredictor::pure_dynamic(Gshare::new(4096));
        let mut misses = 0u64;
        for e in events.iter() {
            let r = p.resolve(e);
            misses += u64::from(r.predicted_taken != e.taken);
        }
        misses
    });

    // The chunked layers ride the pass runner (its default chunk matches
    // the simulator's batch size), so this times exactly the framework path
    // the production consumers use rather than a hand-rolled replica.
    time("packed gshare, batch pass", &mut || {
        let mut p: AnyPredictor = Gshare::new(4096).into();
        let mut out = Vec::with_capacity(4096);
        let mut misses = 0u64;
        let mut pass = FnPass::new("batch", |chunk: &[BranchEvent]| {
            out.clear();
            p.predict_update_batch(chunk, &mut out);
            for (e, pred) in chunk.iter().zip(&out) {
                misses += u64::from(pred.taken != e.taken);
            }
        });
        PassRunner::new().run(SliceSource::new(&events), &mut [&mut pass]);
        drop(pass);
        misses
    });

    time("packed gshare, resolve_batch pass", &mut || {
        let mut p = CombinedPredictor::pure_dynamic(Gshare::new(4096));
        let mut out = Vec::with_capacity(4096);
        let mut misses = 0u64;
        let mut pass = FnPass::new("resolve-batch", |chunk: &[BranchEvent]| {
            out.clear();
            p.resolve_batch(chunk, &mut out);
            for (e, r) in chunk.iter().zip(&out) {
                misses += u64::from(r.predicted_taken != e.taken);
            }
        });
        PassRunner::new().run(SliceSource::new(&events), &mut [&mut pass]);
        drop(pass);
        misses
    });

    time("packed gshare, full Simulator", &mut || {
        let mut p = CombinedPredictor::pure_dynamic(Gshare::new(4096));
        let stats = Simulator::new().run(SliceSource::new(&events), &mut p);
        stats.mispredictions
    });

    // Raw-layout prototypes: fused branchless gshare loops against bare
    // arrays, to bound what the table storage design can reach.
    time("proto AoS u64 slots, raw fused", &mut || {
        let entries = 4096usize * 4;
        let mask = entries as u64 - 1;
        let mut slots = vec![1u64; entries];
        let mut hist = 0u64;
        let (mut lookups, mut collisions, mut misses) = (0u64, 0u64, 0u64);
        for e in events.iter() {
            let index = ((e.pc.0 >> 2) ^ (hist & 0xfff)) & mask;
            let i = index as usize;
            let tag = (e.pc.0 ^ (e.pc.0 >> 32)) as u32;
            let slot = slots[i];
            lookups += 1;
            let collided = (slot & 0x80 != 0) & ((slot >> 32) as u32 != tag);
            collisions += collided as u64;
            let v = (slot & 0x7f) as u8;
            let up = u8::from(e.taken) & u8::from(v < 3);
            let down = u8::from(!e.taken) & u8::from(v > 0);
            slots[i] = ((tag as u64) << 32) | 0x80 | (v + up - down) as u64;
            misses += u64::from((v > 1) != e.taken);
            hist = (hist << 1) | u64::from(e.taken);
        }
        black_box((lookups, collisions));
        misses
    });

    time("proto SoA u32 tags + u8 ctrs", &mut || {
        let entries = 4096usize * 4;
        let mask = entries as u64 - 1;
        let mut tags = vec![0u32; entries];
        let mut ctrs = vec![1u8; entries];
        let mut hist = 0u64;
        let (mut lookups, mut collisions, mut misses) = (0u64, 0u64, 0u64);
        for e in events.iter() {
            let index = ((e.pc.0 >> 2) ^ (hist & 0xfff)) & mask;
            let i = index as usize;
            let tag = (e.pc.0 ^ (e.pc.0 >> 32)) as u32;
            let c = ctrs[i];
            let t = tags[i];
            lookups += 1;
            let collided = (c & 0x80 != 0) & (t != tag);
            collisions += collided as u64;
            let v = c & 0x7f;
            let up = u8::from(e.taken) & u8::from(v < 3);
            let down = u8::from(!e.taken) & u8::from(v > 0);
            ctrs[i] = 0x80 | (v + up - down);
            tags[i] = tag;
            misses += u64::from((v > 1) != e.taken);
            hist = (hist << 1) | u64::from(e.taken);
        }
        black_box((lookups, collisions));
        misses
    });

    // Exactly what the harness times: a full suite pass through
    // current_kernel_pass / baseline_kernel_pass.
    {
        use sdbp_bench::kernel;
        use sdbp_predictors::{PredictorConfig, PredictorKind};
        let suite = kernel::workload_suite(&cache, 4_000_000);
        let n: f64 = suite.iter().map(|e| e.len() as f64).sum();
        let config = PredictorConfig::new(PredictorKind::Gshare, 4096).unwrap();
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let started = Instant::now();
            black_box(kernel::current_kernel_pass(&config, &suite));
            best = best.min(started.elapsed().as_secs_f64());
        }
        println!(
            "harness current_kernel_pass        {:>7.2} Mbr/s  {:>6.2} ns/branch",
            n / best / 1e6,
            best / n * 1e9
        );
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let started = Instant::now();
            black_box(kernel::baseline_kernel_pass(4096, &suite));
            best = best.min(started.elapsed().as_secs_f64());
        }
        println!(
            "harness baseline_kernel_pass       {:>7.2} Mbr/s  {:>6.2} ns/branch",
            n / best / 1e6,
            best / n * 1e9
        );
    }

    // Per-benchmark breakdown of the harness suite: where does a full
    // current-kernel pass spend its time?
    println!("\nper-benchmark, 4M instructions each (current kernel, gshare-4KB):");
    for b in Benchmark::ALL {
        let events = cache.events(b, InputSet::Ref, sdbp_bench::SEED, 4_000_000);
        let n = events.len() as f64;
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let mut p = CombinedPredictor::pure_dynamic(Gshare::new(4096));
            let started = Instant::now();
            let stats = Simulator::new().run(SliceSource::new(&events), &mut p);
            best = best.min(started.elapsed().as_secs_f64());
            black_box(stats.mispredictions);
        }
        println!(
            "  {b:<12} {:>8.0} events  {:>7.2} Mbr/s  {:>6.2} ns/branch",
            n,
            n / best / 1e6,
            best / n * 1e9
        );
    }
}
