//! Table 5 — branch behavior: training vs reference input. See
//! [`sdbp_bench::experiments::table5`].
fn main() {
    println!("{}", sdbp_bench::experiments::table5());
}
