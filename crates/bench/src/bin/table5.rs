//! Table 5 — branch behavior: training vs reference input. See
//! [`sdbp_bench::experiments::table5`].
fn main() {
    let lab = sdbp_core::Lab::new();
    println!("{}", sdbp_bench::experiments::table5(&lab));
}
