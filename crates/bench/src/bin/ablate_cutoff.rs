//! Ablation B — `Static_95` bias-cutoff sweep. See
//! [`sdbp_bench::experiments::ablate_cutoff`].
fn main() {
    let lab = sdbp_core::Lab::new();
    println!("{}", sdbp_bench::experiments::ablate_cutoff(&lab));
}
