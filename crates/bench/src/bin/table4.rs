//! Table 4 — history shifting for statically predicted branches. See
//! [`sdbp_bench::experiments::table4`].
fn main() {
    let lab = sdbp_core::Lab::new();
    println!("{}", sdbp_bench::experiments::table4(&lab));
}
