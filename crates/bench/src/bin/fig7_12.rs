//! Figures 7–12 — five predictors × three static schemes. See
//! [`sdbp_bench::experiments::fig7_12`].
fn main() {
    let lab = sdbp_core::Lab::new();
    println!("{}", sdbp_bench::experiments::fig7_12(&lab));
}
