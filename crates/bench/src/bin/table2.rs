//! Table 2 — percentage of highly biased branches and branch prediction
//! accuracy of the five dynamic predictors. See
//! [`sdbp_bench::experiments::table2`].
fn main() {
    let lab = sdbp_core::Lab::new();
    println!("{}", sdbp_bench::experiments::table2(&lab));
}
