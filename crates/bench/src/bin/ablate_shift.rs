//! Ablation A — history shifting across predictors. See
//! [`sdbp_bench::experiments::ablate_shift`].
fn main() {
    let lab = sdbp_core::Lab::new();
    println!("{}", sdbp_bench::experiments::ablate_shift(&lab));
}
