//! The abstract's headline numbers.
//!
//! The paper's abstract claims "prediction rate improvements of up to 75%
//! for a simple branch predictor (ghist) and up to 14% for a very
//! aggressive hybrid predictor (2bcgskew) for certain programs" — the ghist
//! number comes from 4 KB on m88ksim, the 2bcgskew number from 2 KB on gcc.
//! This binary reproduces exactly those two configurations.

use sdbp_bench::{run_verbose, spec};
use sdbp_core::Lab;
use sdbp_predictors::PredictorKind;
use sdbp_profiles::SelectionScheme;
use sdbp_workloads::Benchmark;

fn main() {
    let mut lab = Lab::new();

    println!("Headline 1: ghist 4KB on m88ksim (paper: up to +75% MISPs/KI with static prediction)");
    let base = run_verbose(
        &mut lab,
        &spec(
            Benchmark::M88ksim,
            PredictorKind::Ghist,
            4 * 1024,
            SelectionScheme::None,
        ),
    );
    let mut best = f64::NEG_INFINITY;
    for scheme in [SelectionScheme::static_95(), SelectionScheme::static_acc()] {
        let report = run_verbose(
            &mut lab,
            &spec(Benchmark::M88ksim, PredictorKind::Ghist, 4 * 1024, scheme),
        );
        best = best.max(report.improvement_over(&base));
    }
    println!("  measured: best improvement {:+.1}%\n", best * 100.0);

    println!("Headline 2: 2bcgskew 2KB on gcc (paper: up to +14% MISPs/KI with static prediction)");
    let base = run_verbose(
        &mut lab,
        &spec(
            Benchmark::Gcc,
            PredictorKind::TwoBcGskew,
            2 * 1024,
            SelectionScheme::None,
        ),
    );
    let mut best = f64::NEG_INFINITY;
    for scheme in [SelectionScheme::static_95(), SelectionScheme::static_acc()] {
        let report = run_verbose(
            &mut lab,
            &spec(Benchmark::Gcc, PredictorKind::TwoBcGskew, 2 * 1024, scheme),
        );
        best = best.max(report.improvement_over(&base));
    }
    println!("  measured: best improvement {:+.1}%", best * 100.0);
}
