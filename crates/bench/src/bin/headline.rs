//! The abstract's headline numbers.
//!
//! The paper's abstract claims "prediction rate improvements of up to 75%
//! for a simple branch predictor (ghist) and up to 14% for a very
//! aggressive hybrid predictor (2bcgskew) for certain programs" — the ghist
//! number comes from 4 KB on m88ksim, the 2bcgskew number from 2 KB on gcc.
//! This binary reproduces exactly those two configurations, running all six
//! cells through the parallel sweep engine.

use sdbp_bench::{run_grid, spec};
use sdbp_core::Lab;
use sdbp_predictors::PredictorKind;
use sdbp_profiles::SelectionScheme;
use sdbp_workloads::Benchmark;

fn main() {
    let lab = Lab::new();
    let schemes = [
        SelectionScheme::None,
        SelectionScheme::static_95(),
        SelectionScheme::static_acc(),
    ];
    let mut specs = Vec::new();
    for (benchmark, kind, size) in [
        (Benchmark::M88ksim, PredictorKind::Ghist, 4 * 1024),
        (Benchmark::Gcc, PredictorKind::TwoBcGskew, 2 * 1024),
    ] {
        for scheme in schemes {
            specs.push(spec(benchmark, kind, size, scheme));
        }
    }
    let reports = run_grid(&lab, specs);

    for (i, (label, claim)) in [
        (
            "ghist 4KB on m88ksim",
            "paper: up to +75% MISPs/KI with static prediction",
        ),
        (
            "2bcgskew 2KB on gcc",
            "paper: up to +14% MISPs/KI with static prediction",
        ),
    ]
    .iter()
    .enumerate()
    {
        let base = &reports[i * 3];
        let best = reports[i * 3 + 1..i * 3 + 3]
            .iter()
            .map(|r| r.improvement_over(base))
            .fold(f64::NEG_INFINITY, f64::max);
        println!("Headline {}: {label} ({claim})", i + 1);
        println!("  measured: best improvement {:+.1}%", best * 100.0);
    }
}
