//! Runs the complete experiment suite — every table and figure of the paper
//! plus the ablations — sharing one [`sdbp_core::Lab`] (and therefore one
//! artifact cache) so each workload is profiled once across all grids. Every
//! grid runs through the parallel sweep engine; scale budgets with
//! `SDBP_SCALE` (default 1.0) and pin worker threads with `SDBP_THREADS`.
use sdbp_bench::experiments;

fn main() {
    let lab = sdbp_core::Lab::new();
    let started = std::time::Instant::now();
    println!("{}", experiments::table1(&lab));
    println!("{}", experiments::table2(&lab));
    println!("{}", experiments::fig1_6(&lab));
    println!("{}", experiments::fig7_12(&lab));
    println!("{}", experiments::table3(&lab));
    println!("{}", experiments::table4(&lab));
    println!("{}", experiments::table5(&lab));
    println!("{}", experiments::fig13(&lab));
    println!("{}", experiments::ablate_shift(&lab));
    println!("{}", experiments::ablate_cutoff(&lab));
    println!("{}", experiments::ablate_selection(&lab));
    println!("{}", experiments::ablate_doubling(&lab));
    println!("{}", experiments::ablate_mcfarling(&lab));
    eprintln!(
        "all experiments completed in {:.1?} on {} threads; lifetime cache: {}",
        started.elapsed(),
        sdbp_core::default_threads(),
        lab.cache().stats()
    );
}
