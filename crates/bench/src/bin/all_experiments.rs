//! Runs the complete experiment suite — every table and figure of the paper
//! plus the ablations — sharing one [`sdbp_core::Lab`] so each workload is
//! profiled once. Scale budgets with `SDBP_SCALE` (default 1.0).
use sdbp_bench::experiments;

fn main() {
    let mut lab = sdbp_core::Lab::new();
    let started = std::time::Instant::now();
    println!("{}", experiments::table1());
    println!("{}", experiments::table2(&mut lab));
    println!("{}", experiments::fig1_6(&mut lab));
    println!("{}", experiments::fig7_12(&mut lab));
    println!("{}", experiments::table3(&mut lab));
    println!("{}", experiments::table4(&mut lab));
    println!("{}", experiments::table5());
    println!("{}", experiments::fig13(&mut lab));
    println!("{}", experiments::ablate_shift(&mut lab));
    println!("{}", experiments::ablate_cutoff(&mut lab));
    println!("{}", experiments::ablate_selection(&mut lab));
    println!("{}", experiments::ablate_doubling(&mut lab));
    println!("{}", experiments::ablate_mcfarling(&mut lab));
    eprintln!("all experiments completed in {:.1?}", started.elapsed());
}
