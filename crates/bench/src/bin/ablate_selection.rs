//! Ablation C — all selection schemes side by side. See
//! [`sdbp_bench::experiments::ablate_selection`].
fn main() {
    let lab = sdbp_core::Lab::new();
    println!("{}", sdbp_bench::experiments::ablate_selection(&lab));
}
