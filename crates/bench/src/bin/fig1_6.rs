//! Figures 1–6 — gshare size sweep with and without `Static_Acc`. See
//! [`sdbp_bench::experiments::fig1_6`].
fn main() {
    let lab = sdbp_core::Lab::new();
    println!("{}", sdbp_bench::experiments::fig1_6(&lab));
}
