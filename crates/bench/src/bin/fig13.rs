//! Figure 13 — cross-training regimes. See
//! [`sdbp_bench::experiments::fig13`].
fn main() {
    let lab = sdbp_core::Lab::new();
    println!("{}", sdbp_bench::experiments::fig13(&lab));
}
