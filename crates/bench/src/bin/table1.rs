//! Table 1 — characteristics of the test programs. See
//! [`sdbp_bench::experiments::table1`].
fn main() {
    println!("{}", sdbp_bench::experiments::table1());
}
