//! Table 1 — characteristics of the test programs. See
//! [`sdbp_bench::experiments::table1`].
fn main() {
    let lab = sdbp_core::Lab::new();
    println!("{}", sdbp_bench::experiments::table1(&lab));
}
