//! Table 3 — 2bcgskew improvements for go & gcc across sizes. See
//! [`sdbp_bench::experiments::table3`].
fn main() {
    let lab = sdbp_core::Lab::new();
    println!("{}", sdbp_bench::experiments::table3(&lab));
}
