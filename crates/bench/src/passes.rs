//! The traversal-economy benchmark: fused profiling and lockstep
//! measurement vs. dedicated trace traversals.
//!
//! Measures the wall-clock effect of the streaming pass framework's two
//! traversal-sharing paths on a profile-heavy grid — the accuracy-profile
//! selection scheme across several predictor configurations per benchmark —
//! with the trace cache disabled (capacity 0), so every traversal
//! regenerates its event stream. That is exactly the regime both paths
//! target: without fusion each profile artifact costs one full generation;
//! with it [`ArtifactCache::profile_bundle`] collects the bias profile and
//! every accuracy profile of a benchmark in a single generator traversal.
//! Without lockstep each grid cell's measurement costs another full
//! generation; with it every cell sharing a branch stream rides one
//! measurement traversal through [`sdbp_core::Lab::run_lockstep`].
//!
//! Consumed by the `sdbp bench-passes` subcommand, which writes the
//! machine-readable `BENCH_passes.json` used by CI and the performance
//! docs.

use sdbp_core::{ArtifactCache, ExperimentSpec, Sweep};
use sdbp_predictors::{PredictorConfig, PredictorKind};
use sdbp_profiles::SelectionScheme;
use sdbp_workloads::Benchmark;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Per-phase instruction budget of the full grid (profile == measure).
pub const FULL_INSTRUCTIONS: u64 = 2_000_000;

/// Per-phase instruction budget under `--quick` (CI smoke mode).
pub const QUICK_INSTRUCTIONS: u64 = 120_000;

/// The gshare sizes giving each benchmark its accuracy-profile fan-out
/// (three distinct predictor configurations → three accuracy profiles that
/// fusion can collect alongside the bias profile in one traversal).
pub const GRID_SIZES: [usize; 3] = [1024, 4 * 1024, 16 * 1024];

/// One timed grid traversal mode: the whole spec grid through a
/// single-threaded [`Sweep`] with fusion and lockstep each on or off.
#[derive(Debug, Clone)]
pub struct PassesMeasurement {
    /// `"unfused"`, `"fused"`, or `"lockstep"`.
    pub label: String,
    /// Best-of-reps wall-clock seconds for one grid pass.
    pub seconds: f64,
    /// Generator traversals spent (the cache's bypass counter — with the
    /// trace store disabled, every traversal is a bypass).
    pub traversals: u64,
    /// Profile traversals saved by fusion during the pass.
    pub traversals_saved: u64,
    /// Measurement traversals saved by lockstep during the pass.
    pub lockstep_saved: u64,
    /// Per-cell measurement throughput over the grid, min/median/max in
    /// megabranches per second (`None` only if no cell executed).
    pub cell_mbrs: Option<(f64, f64, f64)>,
    /// Total mispredictions over the grid (cross-check: all modes must
    /// agree exactly).
    pub mispredictions: u64,
}

impl PassesMeasurement {
    fn json(&self) -> String {
        let cell = match self.cell_mbrs {
            Some((min, median, max)) => {
                format!("{{\"min\": {min:.1}, \"median\": {median:.1}, \"max\": {max:.1}}}")
            }
            None => "null".to_string(),
        };
        format!(
            "{{\"mode\": \"{}\", \"seconds\": {:.6}, \"traversals\": {}, \"traversals_saved\": {}, \"lockstep_saved\": {}, \"cell_mbrs\": {}, \"mispredictions\": {}}}",
            self.label,
            self.seconds,
            self.traversals,
            self.traversals_saved,
            self.lockstep_saved,
            cell,
            self.mispredictions,
        )
    }
}

/// Everything one `bench-passes` run produced.
#[derive(Debug)]
pub struct PassesReport {
    /// Whether this was a `--quick` (CI smoke) run.
    pub quick: bool,
    /// Profile/measure instruction budget per cell.
    pub instructions: u64,
    /// Benchmarks in the grid.
    pub benchmarks: usize,
    /// Grid cells (benchmarks × predictor configurations).
    pub cells: usize,
    /// The grid with fusion on and lockstep off (the pre-lockstep default
    /// path, and the wall-clock baseline lockstep is judged against).
    pub fused: PassesMeasurement,
    /// The grid with fusion disabled (one traversal per profile artifact)
    /// and lockstep off.
    pub unfused: PassesMeasurement,
    /// The grid with both fusion and lockstep enabled (the production
    /// default: one measurement traversal per shared branch stream).
    pub lockstep: PassesMeasurement,
}

impl PassesReport {
    /// Unfused over fused wall-clock — the fusion speedup.
    pub fn speedup(&self) -> f64 {
        if self.fused.seconds > 0.0 {
            self.unfused.seconds / self.fused.seconds
        } else {
            0.0
        }
    }

    /// Fused-sequential over lockstep wall-clock — what lockstep adds on
    /// top of fusion.
    pub fn lockstep_speedup(&self) -> f64 {
        if self.lockstep.seconds > 0.0 {
            self.fused.seconds / self.lockstep.seconds
        } else {
            0.0
        }
    }

    /// Unfused-sequential over lockstep wall-clock — the full traversal
    /// economy of the production grid path (the headline >= 2x target).
    pub fn combined_speedup(&self) -> f64 {
        if self.lockstep.seconds > 0.0 {
            self.unfused.seconds / self.lockstep.seconds
        } else {
            0.0
        }
    }

    fn results_identical(&self) -> bool {
        self.fused.mispredictions == self.unfused.mispredictions
            && self.fused.mispredictions == self.lockstep.mispredictions
    }

    /// Renders the report as the `BENCH_passes.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"sdbp-bench-passes/v2\",\n");
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str(&format!(
            "  \"grid\": {{\"benchmarks\": {}, \"cells\": {}, \"scheme\": \"static_acc\", \"seed\": {}, \"instructions\": {}, \"trace_cache\": \"disabled\"}},\n",
            self.benchmarks,
            self.cells,
            crate::SEED,
            self.instructions,
        ));
        out.push_str(&format!("  \"unfused\": {},\n", self.unfused.json()));
        out.push_str(&format!("  \"fused\": {},\n", self.fused.json()));
        out.push_str(&format!("  \"lockstep\": {},\n", self.lockstep.json()));
        out.push_str(&format!(
            "  \"results_identical\": {},\n",
            self.results_identical()
        ));
        out.push_str(&format!("  \"fusion_speedup\": {:.2},\n", self.speedup()));
        out.push_str(&format!(
            "  \"lockstep_speedup\": {:.2},\n",
            self.lockstep_speedup()
        ));
        out.push_str(&format!(
            "  \"combined_speedup\": {:.2}\n",
            self.combined_speedup()
        ));
        out.push_str("}\n");
        out
    }

    /// A terse human-readable table for the CLI.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "traversal-economy wall clock ({} cells, static_acc, trace cache disabled, best of reps)\n",
            self.cells
        ));
        for m in [&self.unfused, &self.fused, &self.lockstep] {
            let cell = match m.cell_mbrs {
                Some((min, median, max)) => {
                    format!("; cell Mbr/s {min:.1}/{median:.1}/{max:.1}")
                }
                None => String::new(),
            };
            out.push_str(&format!(
                "  {:<8} {:>8.3} s  {:>3} generator traversals ({} saved by fusion, {} by lockstep{})\n",
                m.label, m.seconds, m.traversals, m.traversals_saved, m.lockstep_saved, cell
            ));
        }
        out.push_str(&format!(
            "  fusion speedup: {:.2}x, lockstep adds {:.2}x, combined {:.2}x (results identical: {})\n",
            self.speedup(),
            self.lockstep_speedup(),
            self.combined_speedup(),
            self.results_identical()
        ));
        out
    }
}

/// The profile-heavy grid: `static_acc` (needs a bias *and* a per-predictor
/// accuracy profile) at every [`GRID_SIZES`] gshare configuration on each
/// benchmark.
pub fn grid_specs(benchmarks: &[Benchmark], instructions: u64) -> Vec<ExperimentSpec> {
    let mut specs = Vec::new();
    for &benchmark in benchmarks {
        for size in GRID_SIZES {
            let config = PredictorConfig::new(PredictorKind::Gshare, size)
                .expect("grid sizes are powers of two");
            let mut spec =
                ExperimentSpec::self_trained(benchmark, config, SelectionScheme::static_acc())
                    .with_seed(crate::SEED);
            spec.profile_instructions = Some(instructions);
            spec.measure_instructions = Some(instructions);
            specs.push(spec);
        }
    }
    specs
}

/// What one [`grid_pass`] observed, beyond wall clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridOutcome {
    /// Total mispredictions over the grid.
    pub mispredictions: u64,
    /// Generator traversals spent (the cache bypass counter).
    pub traversals: u64,
    /// Profile traversals saved by fusion.
    pub fused_saved: u64,
    /// Measurement traversals saved by lockstep.
    pub lockstep_saved: u64,
    /// Per-cell throughput min/median/max in Mbr/s.
    pub cell_mbrs: Option<(f64, f64, f64)>,
}

/// One single-threaded sweep over the grid with a fresh,
/// trace-store-disabled cache: every traversal streams straight off the
/// workload generator, so the traversal count *is* the generation count.
/// The sweep engine (not a bare serial [`sdbp_core::Lab`]) is what pools a
/// benchmark's accuracy profiles across cells into one fused prewarm
/// traversal and groups cells sharing a branch stream into one lockstep
/// measurement traversal, so this times the production grid path.
pub fn grid_pass(specs: &[ExperimentSpec], fuse: bool, lockstep: bool) -> GridOutcome {
    let cache = Arc::new(ArtifactCache::with_trace_capacity(0));
    let result = Sweep::new(specs.to_vec())
        .with_cache(Arc::clone(&cache))
        .with_threads(1)
        .with_fusion(fuse)
        .with_lockstep(lockstep)
        .run();
    let cell_mbrs = result.cell_throughput_mbrs();
    let mispredictions = result
        .into_reports()
        .expect("bench grid specs are well-formed")
        .iter()
        .map(|r| r.stats.mispredictions)
        .sum();
    let stats = cache.stats();
    GridOutcome {
        mispredictions,
        traversals: stats.trace_bypassed,
        fused_saved: stats.fused_traversals_saved,
        lockstep_saved: stats.lockstep_traversals_saved,
        cell_mbrs,
    }
}

fn timed<F: FnMut() -> GridOutcome>(label: &str, reps: u32, mut pass: F) -> PassesMeasurement {
    let mut best = f64::INFINITY;
    let mut outcome = None;
    for _ in 0..reps.max(1) {
        let started = Instant::now();
        let o = black_box(pass());
        best = best.min(started.elapsed().as_secs_f64());
        outcome = Some(o);
    }
    let o = outcome.expect("reps >= 1");
    PassesMeasurement {
        label: label.to_string(),
        seconds: best,
        traversals: o.traversals,
        traversals_saved: o.fused_saved,
        lockstep_saved: o.lockstep_saved,
        cell_mbrs: o.cell_mbrs,
        mispredictions: o.mispredictions,
    }
}

/// Runs the full traversal-economy benchmark: the grid with everything
/// disabled (one generator traversal per artifact), with fusion alone (the
/// pre-lockstep default), and with fusion + lockstep (the production
/// default), with `progress` invoked as each mode finishes.
pub fn run(quick: bool, mut progress: impl FnMut(&PassesMeasurement)) -> PassesReport {
    let instructions = if quick {
        QUICK_INSTRUCTIONS
    } else {
        FULL_INSTRUCTIONS
    };
    let reps = if quick { 1 } else { 3 };
    let benchmarks: &[Benchmark] = if quick {
        &[Benchmark::Compress, Benchmark::Ijpeg]
    } else {
        &Benchmark::ALL
    };
    let specs = grid_specs(benchmarks, instructions);

    let unfused = timed("unfused", reps, || grid_pass(&specs, false, false));
    progress(&unfused);
    let fused = timed("fused", reps, || grid_pass(&specs, true, false));
    progress(&fused);
    let lockstep = timed("lockstep", reps, || grid_pass(&specs, true, true));
    progress(&lockstep);

    PassesReport {
        quick,
        instructions,
        benchmarks: benchmarks.len(),
        cells: specs.len(),
        fused,
        unfused,
        lockstep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_grid_pass_modes_agree() {
        let specs = grid_specs(&[Benchmark::Compress], 60_000);
        let unfused = grid_pass(&specs, false, false);
        let fused = grid_pass(&specs, true, false);
        let lockstep = grid_pass(&specs, true, true);
        assert_eq!(
            fused.mispredictions, unfused.mispredictions,
            "fusion must not change results"
        );
        assert_eq!(
            lockstep.mispredictions, fused.mispredictions,
            "lockstep must not change results"
        );
        // Unfused: 1 bias + 3 accuracy + 3 measure traversals. Fused: the
        // bundle collapses the four profile traversals into one. Lockstep:
        // the three measurements additionally share one traversal.
        assert_eq!(unfused.traversals, 7);
        assert_eq!(fused.traversals, 4);
        assert_eq!(lockstep.traversals, 2);
        assert_eq!(unfused.fused_saved, 0);
        assert_eq!(fused.fused_saved, 3);
        assert_eq!(lockstep.fused_saved, 3);
        assert_eq!(unfused.lockstep_saved, 0);
        assert_eq!(fused.lockstep_saved, 0);
        assert_eq!(lockstep.lockstep_saved, 2);
        for outcome in [&unfused, &fused, &lockstep] {
            let (min, median, max) = outcome.cell_mbrs.expect("3 executed cells");
            assert!(min > 0.0 && min <= median && median <= max);
        }
    }

    #[test]
    fn report_json_is_well_formed_enough() {
        let report = run(true, |_| {});
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"sdbp-bench-passes/v2\""));
        assert!(json.contains("\"fused\""));
        assert!(json.contains("\"unfused\""));
        assert!(json.contains("\"lockstep\""));
        assert!(json.contains("\"fusion_speedup\""));
        assert!(json.contains("\"lockstep_speedup\""));
        assert!(json.contains("\"combined_speedup\""));
        assert!(json.contains("\"cell_mbrs\""));
        assert!(json.contains("\"results_identical\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(report.fused.mispredictions, report.unfused.mispredictions);
        assert_eq!(report.lockstep.mispredictions, report.fused.mispredictions);
        assert!(report.fused.traversals < report.unfused.traversals);
        assert!(report.lockstep.traversals < report.fused.traversals);
        assert!(report.fused.traversals_saved > 0);
        assert!(report.lockstep.lockstep_saved > 0);
        assert!(report.speedup() > 0.0);
        assert!(report.lockstep_speedup() > 0.0);
        assert!(report.combined_speedup() > 0.0);
    }
}
