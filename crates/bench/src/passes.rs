//! The pass-fusion benchmark: fused vs. sequential trace traversals.
//!
//! Measures the wall-clock effect of the streaming pass framework's fusion
//! path on a profile-heavy grid — the accuracy-profile selection scheme
//! across several predictor configurations per benchmark — with the trace
//! cache disabled (capacity 0), so every traversal regenerates its event
//! stream. That is exactly the regime fusion targets: without it each
//! profile artifact costs one full generation; with it
//! [`ArtifactCache::profile_bundle`] collects the bias profile and every
//! accuracy profile of a benchmark in a single generator traversal.
//!
//! Consumed by the `sdbp bench-passes` subcommand, which writes the
//! machine-readable `BENCH_passes.json` used by CI and the performance
//! docs.

use sdbp_core::{ArtifactCache, ExperimentSpec, Sweep};
use sdbp_predictors::{PredictorConfig, PredictorKind};
use sdbp_profiles::SelectionScheme;
use sdbp_workloads::Benchmark;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Per-phase instruction budget of the full grid (profile == measure).
pub const FULL_INSTRUCTIONS: u64 = 2_000_000;

/// Per-phase instruction budget under `--quick` (CI smoke mode).
pub const QUICK_INSTRUCTIONS: u64 = 120_000;

/// The gshare sizes giving each benchmark its accuracy-profile fan-out
/// (three distinct predictor configurations → three accuracy profiles that
/// fusion can collect alongside the bias profile in one traversal).
pub const GRID_SIZES: [usize; 3] = [1024, 4 * 1024, 16 * 1024];

/// One timed grid traversal mode: the whole spec grid through a
/// single-threaded [`Sweep`] with fusion on or off.
#[derive(Debug, Clone)]
pub struct PassesMeasurement {
    /// `"fused"` or `"unfused"`.
    pub label: String,
    /// Best-of-reps wall-clock seconds for one grid pass.
    pub seconds: f64,
    /// Generator traversals spent (the cache's bypass counter — with the
    /// trace store disabled, every traversal is a bypass).
    pub traversals: u64,
    /// Profile traversals saved by fusion during the pass.
    pub traversals_saved: u64,
    /// Total mispredictions over the grid (cross-check: both modes must
    /// agree exactly).
    pub mispredictions: u64,
}

impl PassesMeasurement {
    fn json(&self) -> String {
        format!(
            "{{\"mode\": \"{}\", \"seconds\": {:.6}, \"traversals\": {}, \"traversals_saved\": {}, \"mispredictions\": {}}}",
            self.label, self.seconds, self.traversals, self.traversals_saved, self.mispredictions,
        )
    }
}

/// Everything one `bench-passes` run produced.
#[derive(Debug)]
pub struct PassesReport {
    /// Whether this was a `--quick` (CI smoke) run.
    pub quick: bool,
    /// Profile/measure instruction budget per cell.
    pub instructions: u64,
    /// Benchmarks in the grid.
    pub benchmarks: usize,
    /// Grid cells (benchmarks × predictor configurations).
    pub cells: usize,
    /// The grid with pass fusion enabled (the default path).
    pub fused: PassesMeasurement,
    /// The grid with fusion disabled (one traversal per profile artifact).
    pub unfused: PassesMeasurement,
}

impl PassesReport {
    /// Unfused over fused wall-clock — the headline speedup.
    pub fn speedup(&self) -> f64 {
        if self.fused.seconds > 0.0 {
            self.unfused.seconds / self.fused.seconds
        } else {
            0.0
        }
    }

    /// Renders the report as the `BENCH_passes.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"sdbp-bench-passes/v1\",\n");
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str(&format!(
            "  \"grid\": {{\"benchmarks\": {}, \"cells\": {}, \"scheme\": \"static_acc\", \"seed\": {}, \"instructions\": {}, \"trace_cache\": \"disabled\"}},\n",
            self.benchmarks,
            self.cells,
            crate::SEED,
            self.instructions,
        ));
        out.push_str(&format!("  \"fused\": {},\n", self.fused.json()));
        out.push_str(&format!("  \"unfused\": {},\n", self.unfused.json()));
        out.push_str(&format!(
            "  \"results_identical\": {},\n",
            self.fused.mispredictions == self.unfused.mispredictions
        ));
        out.push_str(&format!("  \"fusion_speedup\": {:.2}\n", self.speedup()));
        out.push_str("}\n");
        out
    }

    /// A terse human-readable table for the CLI.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "pass-fusion wall clock ({} cells, static_acc, trace cache disabled, best of reps)\n",
            self.cells
        ));
        for m in [&self.unfused, &self.fused] {
            out.push_str(&format!(
                "  {:<8} {:>8.3} s  {:>3} generator traversals ({} saved by fusion)\n",
                m.label, m.seconds, m.traversals, m.traversals_saved
            ));
        }
        out.push_str(&format!(
            "  fusion speedup: {:.2}x (results identical: {})\n",
            self.speedup(),
            self.fused.mispredictions == self.unfused.mispredictions
        ));
        out
    }
}

/// The profile-heavy grid: `static_acc` (needs a bias *and* a per-predictor
/// accuracy profile) at every [`GRID_SIZES`] gshare configuration on each
/// benchmark.
pub fn grid_specs(benchmarks: &[Benchmark], instructions: u64) -> Vec<ExperimentSpec> {
    let mut specs = Vec::new();
    for &benchmark in benchmarks {
        for size in GRID_SIZES {
            let config = PredictorConfig::new(PredictorKind::Gshare, size)
                .expect("grid sizes are powers of two");
            let mut spec =
                ExperimentSpec::self_trained(benchmark, config, SelectionScheme::static_acc())
                    .with_seed(crate::SEED);
            spec.profile_instructions = Some(instructions);
            spec.measure_instructions = Some(instructions);
            specs.push(spec);
        }
    }
    specs
}

/// One single-threaded sweep over the grid with a fresh,
/// trace-store-disabled cache: every traversal streams straight off the
/// workload generator, so the traversal count *is* the generation count.
/// The sweep engine (not a bare serial [`sdbp_core::Lab`]) is what pools a
/// benchmark's accuracy profiles across cells into one fused prewarm
/// traversal, so this times the production grid path. Returns
/// (mispredictions, traversals, traversals saved by fusion).
pub fn grid_pass(specs: &[ExperimentSpec], fuse: bool) -> (u64, u64, u64) {
    let cache = Arc::new(ArtifactCache::with_trace_capacity(0));
    let result = Sweep::new(specs.to_vec())
        .with_cache(Arc::clone(&cache))
        .with_threads(1)
        .with_fusion(fuse)
        .run();
    let mispredictions = result
        .into_reports()
        .expect("bench grid specs are well-formed")
        .iter()
        .map(|r| r.stats.mispredictions)
        .sum();
    let stats = cache.stats();
    (
        mispredictions,
        stats.trace_bypassed,
        stats.fused_traversals_saved,
    )
}

fn timed<F: FnMut() -> (u64, u64, u64)>(label: &str, reps: u32, mut pass: F) -> PassesMeasurement {
    let mut best = f64::INFINITY;
    let (mut misps, mut traversals, mut saved) = (0u64, 0u64, 0u64);
    for _ in 0..reps.max(1) {
        let started = Instant::now();
        let (m, t, s) = black_box(pass());
        best = best.min(started.elapsed().as_secs_f64());
        misps = m;
        traversals = t;
        saved = s;
    }
    PassesMeasurement {
        label: label.to_string(),
        seconds: best,
        traversals,
        traversals_saved: saved,
        mispredictions: misps,
    }
}

/// Runs the full pass-fusion benchmark: the grid once with fusion disabled
/// (one generator traversal per profile artifact) and once fused, with
/// `progress` invoked as each mode finishes.
pub fn run(quick: bool, mut progress: impl FnMut(&PassesMeasurement)) -> PassesReport {
    let instructions = if quick {
        QUICK_INSTRUCTIONS
    } else {
        FULL_INSTRUCTIONS
    };
    let reps = if quick { 1 } else { 3 };
    let benchmarks: &[Benchmark] = if quick {
        &[Benchmark::Compress, Benchmark::Ijpeg]
    } else {
        &Benchmark::ALL
    };
    let specs = grid_specs(benchmarks, instructions);

    let unfused = timed("unfused", reps, || grid_pass(&specs, false));
    progress(&unfused);
    let fused = timed("fused", reps, || grid_pass(&specs, true));
    progress(&fused);

    PassesReport {
        quick,
        instructions,
        benchmarks: benchmarks.len(),
        cells: specs.len(),
        fused,
        unfused,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fused_and_unfused_grid_passes_agree() {
        let specs = grid_specs(&[Benchmark::Compress], 60_000);
        let (fused_misps, fused_traversals, fused_saved) = grid_pass(&specs, true);
        let (unfused_misps, unfused_traversals, unfused_saved) = grid_pass(&specs, false);
        assert_eq!(fused_misps, unfused_misps, "fusion must not change results");
        // Unfused: 1 bias + 3 accuracy + 3 measure traversals. Fused: the
        // bundle collapses the four profile traversals into one.
        assert_eq!(unfused_traversals, 7);
        assert_eq!(fused_traversals, 4);
        assert_eq!(fused_saved, 3);
        assert_eq!(unfused_saved, 0);
    }

    #[test]
    fn report_json_is_well_formed_enough() {
        let report = run(true, |_| {});
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"sdbp-bench-passes/v1\""));
        assert!(json.contains("\"fused\""));
        assert!(json.contains("\"unfused\""));
        assert!(json.contains("\"fusion_speedup\""));
        assert!(json.contains("\"results_identical\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(report.fused.mispredictions, report.unfused.mispredictions);
        assert!(report.fused.traversals < report.unfused.traversals);
        assert!(report.fused.traversals_saved > 0);
        assert!(report.speedup() > 0.0);
    }
}
