//! The experiment implementations behind the harness binaries.
//!
//! Each function regenerates one table or figure of the paper and returns
//! the rendered report; the binaries under `src/bin/` are thin wrappers, and
//! `all_experiments` runs the full set in one process (sharing one [`Lab`]
//! so profiles are computed once).
//!
//! Every grid-shaped experiment builds its full spec list up front and runs
//! it through [`crate::run_grid`] — the parallel [`sdbp_core::Sweep`] engine
//! backed by the lab's [`sdbp_core::ArtifactCache`] — so cells execute
//! across worker threads while bias/accuracy profiles and generated event
//! streams are computed once and shared. Results come back in spec order and
//! are bit-identical to a serial run, so the rendered tables are unchanged.

use crate::{improvement_pct, measure_budget, run_grid, spec, COMPARISON_SIZE, SEED, SIZE_SWEEP};
use sdbp_core::{ExperimentSpec, Lab, ProfileSource, ShiftPolicy};
use sdbp_predictors::PredictorKind;
use sdbp_profiles::SelectionScheme;
use sdbp_trace::{SliceSource, TraceStats};
use sdbp_util::table::{fixed, grouped, pct, TableWriter};
use sdbp_workloads::{Benchmark, InputSet, Workload};

/// Table 1 — program characteristics.
///
/// Not a predictor grid, so it runs serially, but its train/ref event
/// streams go through the lab's artifact cache — Table 5 measures the
/// identical streams and reuses them for free.
pub fn table1(lab: &Lab) -> String {
    let mut table = TableWriter::with_columns(&[
        "Program",
        "#Instr (static)",
        "#CBRs (static)",
        "Train: #Dyn instr",
        "Train: CBRs/KI",
        "Ref: #Dyn instr",
        "Ref: CBRs/KI",
    ]);
    table.numeric();
    for benchmark in Benchmark::ALL {
        eprintln!("table1: measuring {benchmark} ...");
        let workload = Workload::spec95(benchmark);
        let program = workload.program(InputSet::Train, SEED);
        let mut row = vec![
            benchmark.name().to_string(),
            grouped(program.static_instructions()),
            grouped(program.sites().len() as u64),
        ];
        for input in [InputSet::Train, InputSet::Ref] {
            let budget =
                (workload.spec().default_instructions(input) as f64 * crate::scale()) as u64;
            let events = lab.cache().events(benchmark, input, SEED, budget);
            let stats = TraceStats::from_source(SliceSource::new(&events));
            row.push(grouped(stats.total_instructions()));
            row.push(fixed(stats.cbrs_per_ki(), 0));
        }
        table.row(row);
    }
    format!(
        "Table 1. Characteristics of test programs\n(dynamic budgets scaled from the paper's billions to the defaults in sdbp-workloads)\n\n{}",
        table.render()
    )
}

/// The programs of Table 2, ordered by biased fraction like the paper.
const TABLE2_BENCHMARKS: [Benchmark; 6] = [
    Benchmark::Go,
    Benchmark::Compress,
    Benchmark::Ijpeg,
    Benchmark::Gcc,
    Benchmark::Perl,
    Benchmark::M88ksim,
];

/// The spec grid behind [`table2`].
pub fn table2_specs() -> Vec<ExperimentSpec> {
    let mut specs = Vec::new();
    for benchmark in TABLE2_BENCHMARKS {
        for kind in PredictorKind::PAPER {
            specs.push(spec(
                benchmark,
                kind,
                COMPARISON_SIZE,
                SelectionScheme::None,
            ));
        }
    }
    specs
}

/// Table 2 — biased-branch percentages and per-predictor accuracy.
pub fn table2(lab: &Lab) -> String {
    let benchmarks = TABLE2_BENCHMARKS;
    let specs = table2_specs();
    eprintln!("table2: sweeping {} predictor cells ...", specs.len());
    let mut reports = run_grid(lab, specs).into_iter();

    let mut table = TableWriter::with_columns(&[
        "Program",
        "%Biased(>95%)",
        "bimodal",
        "ghist",
        "gshare",
        "bi-mode",
        "2bcgskew",
    ]);
    table.numeric();
    for benchmark in benchmarks {
        // The measurement stream is already in the cache from the sweep above.
        let events = lab
            .cache()
            .events(benchmark, InputSet::Ref, SEED, measure_budget());
        let stats = TraceStats::from_source(SliceSource::new(&events));
        let mut row = vec![
            benchmark.name().to_string(),
            pct(stats.dynamic_fraction_biased(0.95)),
        ];
        for _ in PredictorKind::PAPER {
            let report = reports.next().expect("one report per spec");
            row.push(pct(report.stats.accuracy()));
        }
        table.row(row);
    }
    format!(
        "Table 2. Percentage of highly biased branches and branch prediction accuracy\n(all predictors {} KB, ref input)\n\n{}",
        COMPARISON_SIZE / 1024,
        table.render()
    )
}

/// The spec grid behind [`fig1_6`].
pub fn fig1_6_specs() -> Vec<ExperimentSpec> {
    let mut specs = Vec::new();
    for benchmark in Benchmark::ALL {
        for size in SIZE_SWEEP {
            for scheme in [SelectionScheme::None, SelectionScheme::static_acc()] {
                specs.push(spec(benchmark, PredictorKind::Gshare, size, scheme));
            }
        }
    }
    specs
}

/// Figures 1–6 — gshare size sweep with and without `Static_Acc`.
pub fn fig1_6(lab: &Lab) -> String {
    let specs = fig1_6_specs();
    eprintln!(
        "fig1_6: sweeping {} cells across 6 figures ...",
        specs.len()
    );
    let mut reports = run_grid(lab, specs).into_iter();

    let mut out = String::new();
    for (i, benchmark) in Benchmark::ALL.iter().enumerate() {
        let mut table = TableWriter::with_columns(&[
            "Size",
            "MISPs/KI (dynamic)",
            "MISPs/KI (+static_acc)",
            "Improvement",
            "Collisions (dynamic)",
            "Collisions (+static)",
        ]);
        table.numeric();
        for size in SIZE_SWEEP {
            let base = reports.next().expect("one report per spec");
            let with = reports.next().expect("one report per spec");
            table.row(vec![
                format!("{}KB", size / 1024),
                fixed(base.stats.misp_per_ki(), 3),
                fixed(with.stats.misp_per_ki(), 3),
                format!("{:+.1}%", with.improvement_over(&base) * 100.0),
                grouped(base.stats.collisions.total),
                grouped(with.stats.collisions.total),
            ]);
        }
        out.push_str(&format!(
            "Figure {}. {}: gshare size vs MISPs/KI, with and without static prediction (static_ACC)\n\n{}\n",
            i + 1,
            benchmark,
            table.render()
        ));
    }
    out
}

/// The static schemes compared by Figures 7–12 and Table 3.
fn three_schemes() -> [SelectionScheme; 3] {
    [
        SelectionScheme::None,
        SelectionScheme::static_95(),
        SelectionScheme::static_acc(),
    ]
}

/// The spec grid behind [`fig7_12`].
pub fn fig7_12_specs() -> Vec<ExperimentSpec> {
    let mut specs = Vec::new();
    for benchmark in Benchmark::ALL {
        for kind in PredictorKind::PAPER {
            for scheme in three_schemes() {
                specs.push(spec(benchmark, kind, COMPARISON_SIZE, scheme));
            }
        }
    }
    specs
}

/// Figures 7–12 — five predictors × three static schemes.
pub fn fig7_12(lab: &Lab) -> String {
    let schemes = three_schemes();
    let specs = fig7_12_specs();
    eprintln!(
        "fig7_12: sweeping {} cells across 6 figures ...",
        specs.len()
    );
    let mut reports = run_grid(lab, specs).into_iter();

    let mut out = String::new();
    for (i, benchmark) in Benchmark::ALL.iter().enumerate() {
        let mut table = TableWriter::with_columns(&[
            "Predictor",
            "MISPs/KI (none)",
            "MISPs/KI (static_95)",
            "MISPs/KI (static_acc)",
            "Δ95",
            "Δacc",
        ]);
        table.numeric();
        for kind in PredictorKind::PAPER {
            let cells: Vec<_> = schemes
                .iter()
                .map(|_| reports.next().expect("one report per spec"))
                .collect();
            table.row(vec![
                kind.name().to_string(),
                fixed(cells[0].stats.misp_per_ki(), 3),
                fixed(cells[1].stats.misp_per_ki(), 3),
                fixed(cells[2].stats.misp_per_ki(), 3),
                format!("{:+.1}%", cells[1].improvement_over(&cells[0]) * 100.0),
                format!("{:+.1}%", cells[2].improvement_over(&cells[0]) * 100.0),
            ]);
        }
        out.push_str(&format!(
            "Figure {}. {}: MISPs/KI per dynamic predictor ({} KB) under the static schemes\n\n{}\n",
            i + 7,
            benchmark,
            COMPARISON_SIZE / 1024,
            table.render()
        ));
    }
    out
}

/// The predictor sizes swept by Table 3.
const TABLE3_SIZES: [usize; 5] = [2 * 1024, 4 * 1024, 8 * 1024, 16 * 1024, 32 * 1024];

/// The spec grid behind [`table3`].
pub fn table3_specs() -> Vec<ExperimentSpec> {
    let mut specs = Vec::new();
    for size in TABLE3_SIZES {
        for benchmark in [Benchmark::Go, Benchmark::Gcc] {
            for scheme in three_schemes() {
                specs.push(spec(benchmark, PredictorKind::TwoBcGskew, size, scheme));
            }
        }
    }
    specs
}

/// Table 3 — 2bcgskew improvements for go & gcc across sizes.
pub fn table3(lab: &Lab) -> String {
    let sizes = TABLE3_SIZES;
    let specs = table3_specs();
    eprintln!("table3: sweeping {} 2bcgskew cells ...", specs.len());
    let mut reports = run_grid(lab, specs).into_iter();

    let mut table = TableWriter::with_columns(&[
        "2bcgskew Size",
        "Go: Static_95",
        "Go: Static_Acc",
        "Gcc: Static_95",
        "Gcc: Static_Acc",
    ]);
    table.numeric();
    for size in sizes {
        let mut row = vec![format!("{} KB", size / 1024)];
        for _benchmark in [Benchmark::Go, Benchmark::Gcc] {
            let base = reports.next().expect("one report per spec");
            for _ in 0..2 {
                let report = reports.next().expect("one report per spec");
                row.push(improvement_pct(&report, &base));
            }
        }
        table.row(row);
    }
    format!(
        "Table 3. 2bcgskew: improvements in MISPs/KI with two static prediction schemes for go & gcc\n\n{}",
        table.render()
    )
}

/// The predictor sizes swept by Table 4.
const TABLE4_SIZES: [usize; 2] = [32 * 1024, 64 * 1024];

/// The spec grid behind [`table4`].
pub fn table4_specs() -> Vec<ExperimentSpec> {
    let mut specs = Vec::new();
    for benchmark in Benchmark::ALL {
        for size in TABLE4_SIZES {
            specs.push(spec(
                benchmark,
                PredictorKind::TwoBcGskew,
                size,
                SelectionScheme::None,
            ));
            for scheme in [SelectionScheme::static_95(), SelectionScheme::static_acc()] {
                for shift in [ShiftPolicy::NoShift, ShiftPolicy::Shift] {
                    specs.push(
                        spec(benchmark, PredictorKind::TwoBcGskew, size, scheme).with_shift(shift),
                    );
                }
            }
        }
    }
    specs
}

/// Table 4 — effect of shifting history for statically predicted branches.
pub fn table4(lab: &Lab) -> String {
    let sizes = TABLE4_SIZES;
    let specs = table4_specs();
    eprintln!("table4: sweeping {} shift-policy cells ...", specs.len());
    let mut reports = run_grid(lab, specs).into_iter();

    let mut table = TableWriter::with_columns(&[
        "Program",
        "Size",
        "Static_95",
        "Static_95 Shift",
        "Static_Acc",
        "Static_Acc Shift",
    ]);
    table.numeric();
    for benchmark in Benchmark::ALL {
        for size in sizes {
            let base = reports.next().expect("one report per spec");
            let mut row = vec![benchmark.name().to_string(), format!("{}", size)];
            for _ in 0..4 {
                let report = reports.next().expect("one report per spec");
                row.push(improvement_pct(&report, &base));
            }
            table.row(row);
        }
    }
    format!(
        "Table 4. 2bcgskew: effect of shifting history for statically predicted branches\n\n{}",
        table.render()
    )
}

/// Table 5 — train-vs-ref branch behavior.
///
/// Serial like Table 1, but it measures the same cached train/ref event
/// streams, so after Table 1 every stream here is a cache hit.
pub fn table5(lab: &Lab) -> String {
    let mut table = TableWriter::with_columns(&[
        "Program",
        "Coverage (static)",
        "Coverage (dynamic)",
        "Dir change (static)",
        "Dir change (dynamic)",
        "Bias chg <5% (static)",
        "Bias chg >50% (static)",
    ]);
    table.numeric();
    for benchmark in Benchmark::ALL {
        eprintln!("table5: comparing {benchmark} train vs ref ...");
        let workload = Workload::spec95(benchmark);
        let train_budget =
            (workload.spec().default_instructions(InputSet::Train) as f64 * crate::scale()) as u64;
        let ref_budget =
            (workload.spec().default_instructions(InputSet::Ref) as f64 * crate::scale()) as u64;
        let train_events = lab
            .cache()
            .events(benchmark, InputSet::Train, SEED, train_budget);
        let ref_events = lab
            .cache()
            .events(benchmark, InputSet::Ref, SEED, ref_budget);
        let train = TraceStats::from_source(SliceSource::new(&train_events));
        let reference = TraceStats::from_source(SliceSource::new(&ref_events));
        let cmp = reference.compare(&train);
        let frac = |n: u64| {
            if cmp.common_static == 0 {
                0.0
            } else {
                n as f64 / cmp.common_static as f64
            }
        };
        table.row(vec![
            benchmark.name().to_string(),
            pct(cmp.coverage_static()),
            pct(cmp.coverage_dynamic()),
            pct(cmp.direction_change_rate_static()),
            pct(cmp.direction_change_rate_dynamic()),
            pct(frac(cmp.bias_change_small_static)),
            pct(frac(cmp.bias_change_large_static)),
        ]);
    }
    format!(
        "Table 5. Branch behavior: training vs reference input\n\n{}",
        table.render()
    )
}

/// The spec grid behind [`fig13`].
pub fn fig13_specs() -> Vec<ExperimentSpec> {
    let size = 16 * 1024;
    let variants = |base: ExperimentSpec| {
        [
            base.clone().with_scheme(SelectionScheme::None),
            base.clone().with_profile(ProfileSource::SelfTrained),
            base.clone().with_profile(ProfileSource::CrossTrained),
            base.with_profile(ProfileSource::MergedCrossTrained {
                max_bias_change: 0.05,
            }),
        ]
    };
    let mut specs = Vec::new();
    for benchmark in Benchmark::ALL {
        specs.extend(variants(spec(
            benchmark,
            PredictorKind::Gshare,
            size,
            SelectionScheme::static_95(),
        )));
    }
    specs
}

/// Figure 13 — cross-training regimes on gshare 16 KB + `Static_95`.
pub fn fig13(lab: &Lab) -> String {
    let specs = fig13_specs();
    eprintln!("fig13: sweeping {} cross-training cells ...", specs.len());
    let mut reports = run_grid(lab, specs).into_iter();

    let mut table = TableWriter::with_columns(&[
        "Program",
        "No static",
        "Self-trained",
        "Naive cross",
        "Merged cross",
    ]);
    table.numeric();
    for benchmark in Benchmark::ALL {
        let mut row = vec![benchmark.name().to_string()];
        for _ in 0..4 {
            let report = reports.next().expect("one report per spec");
            row.push(fixed(report.stats.misp_per_ki(), 3));
        }
        table.row(row);
    }
    format!(
        "Figure 13. Effect of cross-training on profile-based static prediction:\nGSHARE (16 KB) + static prediction (bias > 95%), MISPs/KI\n\n{}",
        table.render()
    )
}

/// The predictor family compared by Ablation E.
const MCFARLING_KINDS: [PredictorKind; 5] = [
    PredictorKind::Bimodal,
    PredictorKind::Gselect,
    PredictorKind::Gshare,
    PredictorKind::Tournament,
    PredictorKind::TwoBcGskew,
];

/// The predictor sizes swept by Ablation E.
const MCFARLING_SIZES: [usize; 3] = [2 * 1024, 8 * 1024, 32 * 1024];

/// The spec grid behind [`ablate_mcfarling`].
pub fn ablate_mcfarling_specs() -> Vec<ExperimentSpec> {
    let mut specs = Vec::new();
    for size in MCFARLING_SIZES {
        for kind in MCFARLING_KINDS {
            specs.push(spec(Benchmark::Gcc, kind, size, SelectionScheme::None));
        }
    }
    specs
}

/// Ablation E — the classic McFarling family comparison (bimodal, gselect,
/// gshare, tournament) across sizes on gcc: the combining-predictor story
/// that 2bcgskew later superseded, as context for Table 2's orderings.
pub fn ablate_mcfarling(lab: &Lab) -> String {
    let kinds = MCFARLING_KINDS;
    let sizes = MCFARLING_SIZES;
    let specs = ablate_mcfarling_specs();
    eprintln!(
        "ablate_mcfarling: sweeping {} predictor-family cells ...",
        specs.len()
    );
    let mut reports = run_grid(lab, specs).into_iter();

    let mut table = TableWriter::with_columns(&[
        "Size",
        "bimodal",
        "gselect",
        "gshare",
        "tournament",
        "2bcgskew",
    ]);
    table.numeric();
    for size in sizes {
        let mut row = vec![format!("{}KB", size / 1024)];
        for _ in kinds {
            let report = reports.next().expect("one report per spec");
            row.push(fixed(report.stats.misp_per_ki(), 3));
        }
        table.row(row);
    }
    format!(
        "Ablation E. The McFarling predictor family on gcc, MISPs/KI (dynamic only)\n\n{}",
        table.render()
    )
}

/// The programs measured by Ablation D.
const DOUBLING_BENCHMARKS: [Benchmark; 3] = [Benchmark::Gcc, Benchmark::M88ksim, Benchmark::Go];

/// The predictors measured by Ablation D.
const DOUBLING_KINDS: [PredictorKind; 2] = [PredictorKind::Ghist, PredictorKind::Gshare];

/// The base sizes doubled by Ablation D.
const DOUBLING_SIZES: [usize; 2] = [2 * 1024, 8 * 1024];

/// The spec grid behind [`ablate_doubling`].
pub fn ablate_doubling_specs() -> Vec<ExperimentSpec> {
    let mut specs = Vec::new();
    for benchmark in DOUBLING_BENCHMARKS {
        for kind in DOUBLING_KINDS {
            for size in DOUBLING_SIZES {
                specs.push(spec(benchmark, kind, size, SelectionScheme::None));
                specs.push(spec(benchmark, kind, size * 2, SelectionScheme::None));
                specs.push(spec(benchmark, kind, size, SelectionScheme::static_acc()));
            }
        }
    }
    specs
}

/// Ablation D — the paper's §1 claim that static prediction "can achieve
/// the effect of doubling predictor size" for the simple predictors:
/// compare `size + static_acc` against `2×size` dynamic-only.
pub fn ablate_doubling(lab: &Lab) -> String {
    let benchmarks = DOUBLING_BENCHMARKS;
    let kinds = DOUBLING_KINDS;
    let sizes = DOUBLING_SIZES;
    let specs = ablate_doubling_specs();
    eprintln!(
        "ablate_doubling: sweeping {} size-doubling cells ...",
        specs.len()
    );
    let mut reports = run_grid(lab, specs).into_iter();

    let mut table = TableWriter::with_columns(&[
        "Program",
        "Predictor",
        "Size",
        "MISPs/KI",
        "2x size",
        "size + static_acc",
    ]);
    table.numeric();
    for benchmark in benchmarks {
        for kind in kinds {
            for size in sizes {
                let base = reports.next().expect("one report per spec");
                let doubled = reports.next().expect("one report per spec");
                let with_static = reports.next().expect("one report per spec");
                table.row(vec![
                    benchmark.name().to_string(),
                    kind.name().to_string(),
                    format!("{}KB", size / 1024),
                    fixed(base.stats.misp_per_ki(), 3),
                    fixed(doubled.stats.misp_per_ki(), 3),
                    fixed(with_static.stats.misp_per_ki(), 3),
                ]);
            }
        }
    }
    format!(
        "Ablation D. Does static prediction equal a size doubling? (paper §1 claim)\n\n{}",
        table.render()
    )
}

/// The programs measured by Ablation A.
const SHIFT_BENCHMARKS: [Benchmark; 3] = [Benchmark::Go, Benchmark::Gcc, Benchmark::M88ksim];

/// The history-using predictors measured by Ablation A.
const SHIFT_KINDS: [PredictorKind; 4] = [
    PredictorKind::Ghist,
    PredictorKind::Gshare,
    PredictorKind::BiMode,
    PredictorKind::TwoBcGskew,
];

/// The spec grid behind [`ablate_shift`].
pub fn ablate_shift_specs() -> Vec<ExperimentSpec> {
    let mut specs = Vec::new();
    for benchmark in SHIFT_BENCHMARKS {
        for kind in SHIFT_KINDS {
            specs.push(spec(
                benchmark,
                kind,
                COMPARISON_SIZE,
                SelectionScheme::None,
            ));
            for scheme in [SelectionScheme::static_95(), SelectionScheme::static_acc()] {
                for shift in [ShiftPolicy::NoShift, ShiftPolicy::Shift] {
                    specs.push(spec(benchmark, kind, COMPARISON_SIZE, scheme).with_shift(shift));
                }
            }
        }
    }
    specs
}

/// Ablation A — shift-vs-no-shift across every history-using predictor.
pub fn ablate_shift(lab: &Lab) -> String {
    let benchmarks = SHIFT_BENCHMARKS;
    let kinds = SHIFT_KINDS;
    let specs = ablate_shift_specs();
    eprintln!(
        "ablate_shift: sweeping {} shift-policy cells ...",
        specs.len()
    );
    let mut reports = run_grid(lab, specs).into_iter();

    let mut table = TableWriter::with_columns(&[
        "Program",
        "Predictor",
        "Static_95",
        "Static_95 Shift",
        "Static_Acc",
        "Static_Acc Shift",
    ]);
    table.numeric();
    for benchmark in benchmarks {
        for kind in kinds {
            let base = reports.next().expect("one report per spec");
            let mut row = vec![benchmark.name().to_string(), kind.name().to_string()];
            for _ in 0..4 {
                let report = reports.next().expect("one report per spec");
                row.push(improvement_pct(&report, &base));
            }
            table.row(row);
        }
    }
    format!(
        "Ablation A. History shifting for statically predicted branches, per predictor ({} KB)\n\n{}",
        COMPARISON_SIZE / 1024,
        table.render()
    )
}

/// The programs measured by Ablation B.
const CUTOFF_BENCHMARKS: [Benchmark; 2] = [Benchmark::Gcc, Benchmark::M88ksim];

/// The bias cutoffs swept by Ablation B.
const CUTOFFS: [f64; 5] = [0.80, 0.90, 0.95, 0.99, 0.999];

/// The spec grid behind [`ablate_cutoff`].
pub fn ablate_cutoff_specs() -> Vec<ExperimentSpec> {
    let mut specs: Vec<_> = CUTOFF_BENCHMARKS
        .iter()
        .map(|b| {
            spec(
                *b,
                PredictorKind::Gshare,
                COMPARISON_SIZE,
                SelectionScheme::None,
            )
        })
        .collect();
    for cutoff in CUTOFFS {
        for benchmark in CUTOFF_BENCHMARKS {
            specs.push(spec(
                benchmark,
                PredictorKind::Gshare,
                COMPARISON_SIZE,
                SelectionScheme::Bias { cutoff },
            ));
        }
    }
    specs
}

/// Ablation B — `Static_95` bias-cutoff sweep.
pub fn ablate_cutoff(lab: &Lab) -> String {
    let benchmarks = CUTOFF_BENCHMARKS;
    let cutoffs = CUTOFFS;
    let specs = ablate_cutoff_specs();
    eprintln!(
        "ablate_cutoff: sweeping {} bias-cutoff cells ...",
        specs.len()
    );
    let mut reports = run_grid(lab, specs).into_iter();
    let bases: Vec<_> = benchmarks
        .iter()
        .map(|_| reports.next().expect("one report per spec"))
        .collect();

    let mut table = TableWriter::with_columns(&[
        "Cutoff",
        "gcc: hints",
        "gcc: MISPs/KI",
        "gcc: Δ",
        "m88ksim: hints",
        "m88ksim: MISPs/KI",
        "m88ksim: Δ",
    ]);
    table.numeric();
    for cutoff in cutoffs {
        let mut row = vec![format!("{:.1}%", cutoff * 100.0)];
        for base in &bases {
            let report = reports.next().expect("one report per spec");
            row.push(grouped(report.hints as u64));
            row.push(fixed(report.stats.misp_per_ki(), 3));
            row.push(improvement_pct(&report, base));
        }
        table.row(row);
    }
    format!(
        "Ablation B. Static_95 bias-cutoff sweep on gshare ({} KB)\n\n{}",
        COMPARISON_SIZE / 1024,
        table.render()
    )
}

/// Every selection scheme compared by Ablation C.
fn selection_schemes() -> [SelectionScheme; 5] {
    [
        SelectionScheme::None,
        SelectionScheme::static_95(),
        SelectionScheme::static_acc(),
        SelectionScheme::Factor { factor: 1.05 },
        SelectionScheme::collision_aware(),
    ]
}

/// The spec grid behind [`ablate_selection`].
pub fn ablate_selection_specs() -> Vec<ExperimentSpec> {
    let mut specs = Vec::new();
    for benchmark in Benchmark::ALL {
        for scheme in selection_schemes() {
            specs.push(spec(
                benchmark,
                PredictorKind::Gshare,
                COMPARISON_SIZE,
                scheme,
            ));
        }
    }
    specs
}

/// Ablation C — all selection schemes side by side, including `Static_Fac`
/// and the future-work collision-aware scheme.
pub fn ablate_selection(lab: &Lab) -> String {
    let schemes = selection_schemes();
    let specs = ablate_selection_specs();
    eprintln!(
        "ablate_selection: sweeping {} selection-scheme cells ...",
        specs.len()
    );
    let mut reports = run_grid(lab, specs).into_iter();

    let mut table = TableWriter::with_columns(&[
        "Program",
        "none",
        "static_95",
        "static_acc",
        "static_fac1.05",
        "static_col",
    ]);
    table.numeric();
    for benchmark in Benchmark::ALL {
        let mut row = vec![benchmark.name().to_string()];
        for _ in schemes {
            let report = reports.next().expect("one report per spec");
            row.push(fixed(report.stats.misp_per_ki(), 3));
        }
        table.row(row);
    }
    format!(
        "Ablation C. Selection schemes on gshare ({} KB), MISPs/KI\n(static_col is the paper's future-work collision-aware selection)\n\n{}",
        COMPARISON_SIZE / 1024,
        table.render()
    )
}

/// Every spec the full experiment suite runs, in execution order.
///
/// This is the harness's own pre-flight surface: `sdbp check --suite` and
/// the suite-hygiene test below lint every one of these through
/// `sdbp-check` before any long run is attempted.
pub fn suite_specs() -> Vec<ExperimentSpec> {
    let mut specs = Vec::new();
    specs.extend(table2_specs());
    specs.extend(fig1_6_specs());
    specs.extend(fig7_12_specs());
    specs.extend(table3_specs());
    specs.extend(table4_specs());
    specs.extend(fig13_specs());
    specs.extend(ablate_mcfarling_specs());
    specs.extend(ablate_doubling_specs());
    specs.extend(ablate_shift_specs());
    specs.extend(ablate_cutoff_specs());
    specs.extend(ablate_selection_specs());
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_nonempty_and_covers_every_grid() {
        let specs = suite_specs();
        // Every grid experiment contributes at least one cell.
        assert!(specs.len() > 300, "suite has only {} cells", specs.len());
        // The paper predictors all appear somewhere in the suite.
        for kind in PredictorKind::PAPER {
            assert!(
                specs.iter().any(|s| s.predictor.kind() == kind),
                "suite never exercises {kind}"
            );
        }
    }

    #[test]
    fn every_suite_spec_passes_the_static_checker() {
        // The acceptance bar for the diagnostics engine: the harness's own
        // grids must lint clean (notes are fine, warnings and errors are
        // not) — otherwise `run_grid`'s pre-flight would abort a real run.
        for (i, spec) in suite_specs().iter().enumerate() {
            let diags = sdbp_check::lint_spec(spec, "<suite>");
            assert!(
                diags.is_clean(),
                "suite spec #{i} ({spec:?}) is not clean:\n{}",
                diags.render_text()
            );
        }
    }

    #[test]
    fn every_suite_spec_passes_preflight() {
        for spec in suite_specs() {
            sdbp_check::preflight(&spec).expect("suite spec must pre-flight");
        }
    }
}
