//! The hot-path simulation-kernel micro-benchmark.
//!
//! Measures raw kernel throughput — resolved branches per second through
//! [`CombinedPredictor`] + [`Simulator`] — for every built-in predictor and
//! a gshare size sweep, against a faithful replica of the pre-optimization
//! kernel: a gshare built on the naive [`ReferenceTable`], virtually
//! dispatched through `Box<dyn DynamicPredictor>`, driven one event at a
//! time through `next_event`. The same workload streams feed both sides, so
//! the ratio isolates the kernel changes (bit-packed counters, enum
//! dispatch, chunked event pulls) from everything else.
//!
//! Consumed by the `simkernel` criterion bench (`cargo bench -p sdbp-bench
//! --bench simkernel`) and the `sdbp bench-kernel` subcommand, which writes
//! the machine-readable `BENCH_simkernel.json` used by CI and the
//! performance docs.

use sdbp_core::{
    ArtifactCache, BranchResolution, CombinedPredictor, ShiftPolicy, SimStats, Simulator,
};
use sdbp_predictors::{
    DynamicPredictor, HistoryRegister, Prediction, PredictorConfig, PredictorKind, ReferenceTable,
};
use sdbp_profiles::HintDatabase;
use sdbp_trace::{BranchAddr, BranchEvent, BranchSource, SliceSource};
use sdbp_workloads::{Benchmark, InputSet, Workload};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Per-benchmark instruction budget of the full workload suite.
pub const FULL_INSTRUCTIONS: u64 = 4_000_000;

/// Per-benchmark instruction budget under `--quick` (CI smoke mode).
pub const QUICK_INSTRUCTIONS: u64 = 200_000;

/// The size at which the baseline comparison runs (the acceptance point:
/// current gshare at this size must beat the reference kernel by >= 2x).
pub const BASELINE_SIZE: usize = 4 * 1024;

/// The gshare sizes swept in addition to the all-predictor comparison.
pub const GSHARE_SIZES: [usize; 4] = [1024, 4 * 1024, 16 * 1024, 64 * 1024];

/// One timed kernel measurement: a full pass of the workload suite through
/// one predictor configuration.
#[derive(Debug, Clone)]
pub struct KernelMeasurement {
    /// Scheme label (`"gshare"`, …, or [`ReferenceGshare`]'s name for the
    /// baseline row).
    pub label: String,
    /// Modeled predictor budget in bytes.
    pub size_bytes: usize,
    /// Branches resolved in one suite pass.
    pub branches: u64,
    /// Best-of-reps wall-clock seconds for one suite pass.
    pub seconds: f64,
    /// Table collisions accumulated over the pass (a cheap cross-check that
    /// both kernels simulated the same thing).
    pub collisions: u64,
}

impl KernelMeasurement {
    /// Kernel throughput in resolved branches per second.
    pub fn branches_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.branches as f64 / self.seconds
        } else {
            0.0
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"predictor\": \"{}\", \"size_bytes\": {}, \"branches\": {}, \"seconds\": {:.6}, \"branches_per_sec\": {:.0}, \"collisions\": {}}}",
            self.label, self.size_bytes, self.branches, self.seconds,
            self.branches_per_sec(), self.collisions,
        )
    }
}

/// Everything one `bench-kernel` run produced.
#[derive(Debug)]
pub struct KernelReport {
    /// Whether this was a `--quick` (CI smoke) run.
    pub quick: bool,
    /// Per-benchmark instruction budget used.
    pub instructions_per_benchmark: u64,
    /// Total branch events across the suite (one pass).
    pub events: u64,
    /// The pre-optimization kernel replica at [`BASELINE_SIZE`].
    pub baseline: KernelMeasurement,
    /// The current kernel, per predictor/size.
    pub kernels: Vec<KernelMeasurement>,
    /// Trace-store hits during workload generation.
    pub cache_hits: u64,
    /// Trace-store misses during workload generation.
    pub cache_misses: u64,
}

impl KernelReport {
    /// Current-kernel gshare throughput at [`BASELINE_SIZE`] over the
    /// reference kernel — the headline speedup.
    pub fn gshare_speedup(&self) -> f64 {
        let current = self
            .kernels
            .iter()
            .find(|m| m.label == "gshare" && m.size_bytes == BASELINE_SIZE)
            .map(KernelMeasurement::branches_per_sec)
            .unwrap_or(0.0);
        let base = self.baseline.branches_per_sec();
        if base > 0.0 {
            current / base
        } else {
            0.0
        }
    }

    /// Renders the report as the `BENCH_simkernel.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"sdbp-bench-kernel/v2\",\n");
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str(&format!(
            "  \"workload\": {{\"benchmarks\": {}, \"input\": \"ref\", \"seed\": {}, \"instructions_per_benchmark\": {}, \"events\": {}}},\n",
            Benchmark::ALL.len(),
            crate::SEED,
            self.instructions_per_benchmark,
            self.events,
        ));
        out.push_str(&format!(
            "  \"cache\": {{\"trace_hits\": {}, \"trace_misses\": {}}},\n",
            self.cache_hits, self.cache_misses,
        ));
        out.push_str(&format!("  \"baseline\": {},\n", self.baseline.json()));
        out.push_str(&format!(
            "  \"gshare_speedup_over_baseline\": {:.2},\n",
            self.gshare_speedup()
        ));
        out.push_str("  \"kernels\": [\n");
        for (i, m) in self.kernels.iter().enumerate() {
            let comma = if i + 1 < self.kernels.len() { "," } else { "" };
            out.push_str(&format!("    {}{}\n", m.json(), comma));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// A terse human-readable table for the CLI.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "simulation kernel throughput ({} events/pass, best of reps)\n",
            self.events
        ));
        let row = |m: &KernelMeasurement| {
            format!(
                "  {:<20} {:>7}B  {:>12.2} Mbranches/s\n",
                m.label,
                m.size_bytes,
                m.branches_per_sec() / 1e6
            )
        };
        out.push_str(&row(&self.baseline));
        for m in &self.kernels {
            out.push_str(&row(m));
        }
        out.push_str(&format!(
            "  gshare {}B speedup over reference kernel: {:.2}x\n",
            BASELINE_SIZE,
            self.gshare_speedup()
        ));
        out
    }
}

/// The pre-optimization gshare: same index function and collision semantics
/// as [`sdbp_predictors::Gshare`], but backed by the naive
/// [`ReferenceTable`] (unpacked `SaturatingCounter` vector plus
/// `Option<BranchAddr>` tag vector). Predictions are bit-identical to the
/// packed gshare; only the storage layout — and therefore the speed —
/// differs.
#[derive(Debug, Clone)]
pub struct ReferenceGshare {
    table: ReferenceTable,
    history: HistoryRegister,
    history_len: u32,
    latched: Option<(BranchAddr, u64)>,
}

impl ReferenceGshare {
    /// Mirrors `Gshare::new`: history length = index width capped at 12.
    pub fn new(size_bytes: usize) -> Self {
        let table = ReferenceTable::two_bit(size_bytes * 4);
        let history_len = table.index_bits().min(12);
        Self {
            history: HistoryRegister::new(history_len),
            history_len,
            table,
            latched: None,
        }
    }

    fn index(&self, pc: BranchAddr) -> u64 {
        let hist_mask = if self.history_len >= 64 {
            u64::MAX
        } else {
            (1u64 << self.history_len) - 1
        };
        (pc.word_index() ^ (self.history.bits(self.history_len) & hist_mask))
            & self.table.index_mask()
    }
}

impl DynamicPredictor for ReferenceGshare {
    fn name(&self) -> &'static str {
        "gshare-reference"
    }

    fn size_bytes(&self) -> usize {
        self.table.size_bytes()
    }

    fn predict(&mut self, pc: BranchAddr) -> Prediction {
        let index = self.index(pc);
        let (taken, collision) = self.table.lookup(index, pc);
        self.latched = Some((pc, index));
        Prediction { taken, collision }
    }

    fn update(&mut self, pc: BranchAddr, taken: bool) {
        let (latched_pc, index) = self.latched.take().expect("update without predict");
        assert_eq!(latched_pc, pc, "gshare-reference: update pc mismatch");
        self.table.train(index, taken);
        self.history.push(taken);
    }

    fn shift_history(&mut self, taken: bool) {
        self.history.push(taken);
    }

    fn total_collisions(&self) -> u64 {
        self.table.collisions()
    }

    fn history_bits(&self) -> u32 {
        self.history_len
    }
}

/// Generates (through `cache`, so reruns hit the trace store) the event
/// stream of every benchmark at the given budget.
pub fn workload_suite(cache: &ArtifactCache, instructions: u64) -> Vec<Arc<Vec<BranchEvent>>> {
    Benchmark::ALL
        .iter()
        .map(|&b| cache.events(b, InputSet::Ref, crate::SEED, instructions))
        .collect()
}

/// A standalone suite for the criterion bench (no cache observability).
pub fn standalone_suite(instructions: u64) -> Vec<Vec<BranchEvent>> {
    Benchmark::ALL
        .iter()
        .map(|&b| {
            Workload::spec95(b)
                .generator(InputSet::Ref, crate::SEED)
                .take_instructions(instructions)
                .collect_trace()
                .into_iter()
                .collect()
        })
        .collect()
}

/// One suite pass through the **current** kernel: enum-dispatched predictor,
/// chunked [`Simulator`] loop, packed tables. Returns (branches, collisions).
pub fn current_kernel_pass(
    config: &PredictorConfig,
    suite: &[Arc<Vec<BranchEvent>>],
) -> (u64, u64) {
    let mut branches = 0u64;
    let mut collisions = 0u64;
    for events in suite {
        let mut predictor = CombinedPredictor::pure_dynamic(config.build_any());
        let stats = Simulator::new().run(SliceSource::new(events), &mut predictor);
        branches += stats.branches;
        collisions += predictor.total_collisions();
    }
    (branches, collisions)
}

/// A line-for-line replica of the pre-optimization combined predictor: the
/// dynamic component behind a `Box<dyn DynamicPredictor>` **field** (so
/// every `predict`/`update` is a virtual call, as it was when the concrete
/// type was erased at a crate boundary) and an unconditional per-branch
/// hint-database probe.
struct BaselineCombined {
    dynamic: Box<dyn DynamicPredictor>,
    hints: HintDatabase,
    shift_policy: ShiftPolicy,
}

impl BaselineCombined {
    fn resolve(&mut self, event: &BranchEvent) -> BranchResolution {
        match self.hints.get(event.pc) {
            Some(hint_taken) => {
                if self.shift_policy == ShiftPolicy::Shift {
                    self.dynamic.shift_history(event.taken);
                }
                BranchResolution {
                    predicted_taken: hint_taken,
                    was_static: true,
                    collision: false,
                }
            }
            None => {
                let pred = self.dynamic.predict(event.pc);
                self.dynamic.update(event.pc, event.taken);
                BranchResolution {
                    predicted_taken: pred.taken,
                    was_static: false,
                    collision: pred.collision,
                }
            }
        }
    }
}

/// One suite pass through the **reference** kernel: `Box<dyn>` virtual
/// dispatch, one `next_event` call per branch, naive table storage, and the
/// original single-event accounting loop — the shape of the simulator
/// before the kernel optimizations.
pub fn baseline_kernel_pass(size_bytes: usize, suite: &[Arc<Vec<BranchEvent>>]) -> (u64, u64) {
    let mut branches = 0u64;
    let mut collisions = 0u64;
    for events in suite {
        // `black_box` hides the concrete type behind the vtable pointer.
        // Without it LLVM devirtualizes and inlines the whole predictor
        // into this loop — an optimization the pre-PR build never got,
        // because the box was constructed in a different crate than the
        // simulator loop that called through it.
        let boxed: Box<dyn DynamicPredictor> = Box::new(ReferenceGshare::new(size_bytes));
        let mut predictor = BaselineCombined {
            dynamic: black_box(boxed),
            hints: HintDatabase::new(),
            shift_policy: ShiftPolicy::NoShift,
        };
        let mut source = SliceSource::new(events);
        // The original `run_with_observer` body (warm-up budget 0).
        let mut stats = SimStats::default();
        while let Some(event) = source.next_event() {
            let resolution = predictor.resolve(&event);
            let correct = resolution.predicted_taken == event.taken;
            stats.instructions += event.instructions();
            stats.branches += 1;
            stats.mispredictions += u64::from(!correct);
            if resolution.was_static {
                stats.static_predicted += 1;
                stats.static_mispredictions += u64::from(!correct);
            }
            if resolution.collision {
                stats.collisions.record(correct);
            }
        }
        black_box(&stats);
        branches += stats.branches;
        collisions += predictor.dynamic.total_collisions();
    }
    (branches, collisions)
}

fn timed<F: FnMut() -> (u64, u64)>(reps: u32, mut pass: F) -> (u64, f64, u64) {
    let mut best = f64::INFINITY;
    let (mut branches, mut collisions) = (0u64, 0u64);
    for _ in 0..reps.max(1) {
        let started = Instant::now();
        let (b, c) = black_box(pass());
        best = best.min(started.elapsed().as_secs_f64());
        branches = b;
        collisions = c;
    }
    (branches, best, collisions)
}

/// Times the current kernel for one predictor configuration.
pub fn measure_current(
    kind: PredictorKind,
    size_bytes: usize,
    suite: &[Arc<Vec<BranchEvent>>],
    reps: u32,
) -> KernelMeasurement {
    let config = PredictorConfig::new(kind, size_bytes).expect("bench sizes are powers of two");
    let (branches, seconds, collisions) = timed(reps, || current_kernel_pass(&config, suite));
    KernelMeasurement {
        label: kind.to_string(),
        size_bytes,
        branches,
        seconds,
        collisions,
    }
}

/// Times the reference kernel at `size_bytes`.
pub fn measure_baseline(
    size_bytes: usize,
    suite: &[Arc<Vec<BranchEvent>>],
    reps: u32,
) -> KernelMeasurement {
    let (branches, seconds, collisions) = timed(reps, || baseline_kernel_pass(size_bytes, suite));
    KernelMeasurement {
        label: "gshare-reference".to_string(),
        size_bytes,
        branches,
        seconds,
        collisions,
    }
}

/// Runs the full kernel benchmark: the reference baseline, a gshare size
/// sweep, and every other predictor at [`BASELINE_SIZE`], with `progress`
/// invoked once per finished row. Every row re-pulls its workload streams
/// through one shared [`ArtifactCache`], so the report's cache counters
/// show one miss per benchmark and hits for every reuse.
pub fn run(quick: bool, mut progress: impl FnMut(&KernelMeasurement)) -> KernelReport {
    let instructions = if quick {
        QUICK_INSTRUCTIONS
    } else {
        FULL_INSTRUCTIONS
    };
    let reps = if quick { 1 } else { 3 };
    let cache = ArtifactCache::new();
    let suite = workload_suite(&cache, instructions);
    let events: u64 = suite.iter().map(|e| e.len() as u64).sum();

    let baseline = measure_baseline(BASELINE_SIZE, &suite, reps);
    progress(&baseline);

    let mut kernels = Vec::new();
    for size in GSHARE_SIZES {
        let suite = workload_suite(&cache, instructions);
        let m = measure_current(PredictorKind::Gshare, size, &suite, reps);
        progress(&m);
        kernels.push(m);
    }
    let comparison_kinds = if quick {
        // The cheap bimodal floor, the dearest SWAR-batched skewed
        // predictor, and both frontier designs, so CI smoke exercises
        // every kernel dispatch family.
        vec![
            PredictorKind::Bimodal,
            PredictorKind::TwoBcGskew,
            PredictorKind::Perceptron,
            PredictorKind::TageLite,
        ]
    } else {
        PredictorKind::ALL
            .iter()
            .copied()
            .filter(|&k| k != PredictorKind::Gshare)
            .collect()
    };
    for kind in comparison_kinds {
        let suite = workload_suite(&cache, instructions);
        let m = measure_current(kind, BASELINE_SIZE, &suite, reps);
        progress(&m);
        kernels.push(m);
    }

    let stats = cache.stats();
    KernelReport {
        quick,
        instructions_per_benchmark: instructions,
        events,
        baseline,
        kernels,
        cache_hits: stats.trace_hits,
        cache_misses: stats.trace_misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_suite() -> Vec<Arc<Vec<BranchEvent>>> {
        workload_suite(&ArtifactCache::new(), 60_000)
    }

    #[test]
    fn reference_gshare_matches_packed_gshare_exactly() {
        // Same index function + same collision semantics: the two kernels
        // must agree branch for branch, not just in aggregate.
        let suite = tiny_suite();
        let mut packed = sdbp_predictors::Gshare::new(BASELINE_SIZE);
        let mut reference = ReferenceGshare::new(BASELINE_SIZE);
        assert_eq!(packed.size_bytes(), reference.size_bytes());
        for events in &suite {
            for e in events.iter() {
                let a = packed.predict(e.pc);
                let b = reference.predict(e.pc);
                assert_eq!(a, b);
                packed.update(e.pc, e.taken);
                reference.update(e.pc, e.taken);
            }
        }
        assert_eq!(packed.total_collisions(), reference.total_collisions());
    }

    #[test]
    fn both_kernel_passes_simulate_the_same_branches() {
        let suite = tiny_suite();
        let config = PredictorConfig::new(PredictorKind::Gshare, BASELINE_SIZE).unwrap();
        let current = current_kernel_pass(&config, &suite);
        let baseline = baseline_kernel_pass(BASELINE_SIZE, &suite);
        assert_eq!(current, baseline, "(branches, collisions) must agree");
    }

    #[test]
    fn report_json_is_well_formed_enough() {
        let report = run(true, |_| {});
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"sdbp-bench-kernel/v2\""));
        assert!(json.contains("\"baseline\""));
        // The quick comparison set covers the frontier designs too.
        assert!(json.contains("\"predictor\": \"perceptron\""));
        assert!(json.contains("\"predictor\": \"tage-lite\""));
        assert!(json.contains("\"gshare_speedup_over_baseline\""));
        assert!(json.contains("\"trace_hits\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(report.gshare_speedup() > 0.0);
        assert!(report.events > 0);
        // One trace per benchmark generated, reused by every measurement.
        assert_eq!(report.cache_misses, Benchmark::ALL.len() as u64);
        assert!(report.cache_hits > 0);
    }
}
