//! The per-family grid benchmark: static/dynamic schemes across workload
//! families, plus the imported-trace identity check.
//!
//! ROADMAP item 2 asks where static hints help on workloads the paper
//! never saw. This module answers it with one grid — every family's
//! benchmarks × {gshare, agree, tage-lite} × {dynamic, static_95,
//! static_acc} — run through the production sweep engine (fusion and
//! lockstep on), aggregated *per family*: MISPs/KI is not comparable
//! across families, so each gets its own row with its own delta vs. the
//! unhinted baseline.
//!
//! The identity check closes the importer-seam loop: one benchmark's
//! generator stream is exported to a trace file, re-admitted through
//! [`sdbp_workloads::imports`], and run as a grid cell. The imported
//! cell's statistics and report line must be bit-identical to the
//! generator-backed cell — the file round-trip must be invisible.
//!
//! Consumed by the `sdbp bench-families` subcommand, which writes the
//! machine-readable `BENCH_families.json` used by CI and the docs.

use sdbp_core::{ArtifactCache, ExperimentSpec, Report, Sweep};
use sdbp_predictors::{PredictorConfig, PredictorKind};
use sdbp_profiles::SelectionScheme;
use sdbp_trace::{write_binary, BranchSource};
use sdbp_workloads::{open_source, Benchmark, InputSet, WorkloadFamily};
use std::path::Path;
use std::sync::Arc;

/// Per-phase instruction budget of the full grid (profile == measure).
pub const FULL_INSTRUCTIONS: u64 = 2_000_000;

/// Per-phase instruction budget under `--quick` (CI smoke mode).
pub const QUICK_INSTRUCTIONS: u64 = 120_000;

/// The predictors the family grid sweeps: the paper's workhorse, the
/// strongest agree-style scheme, and the modern tagged-geometric baseline.
pub const FAMILY_PREDICTORS: [PredictorKind; 3] = [
    PredictorKind::Gshare,
    PredictorKind::Agree,
    PredictorKind::TageLite,
];

/// The predictor size used by every family-grid cell.
pub const FAMILY_SIZE: usize = 8 * 1024;

/// The synthetic families the grid covers, in report order.
pub const FAMILIES: [WorkloadFamily; 3] = [
    WorkloadFamily::Spec95,
    WorkloadFamily::Server,
    WorkloadFamily::H2p,
];

/// The selection schemes swept per cell: the dynamic baseline, then the
/// paper's two static-selection flavors.
pub fn schemes() -> [(&'static str, SelectionScheme); 3] {
    [
        ("none", SelectionScheme::None),
        ("static_95", SelectionScheme::static_95()),
        ("static_acc", SelectionScheme::static_acc()),
    ]
}

/// One scheme's aggregate over a family's cells.
#[derive(Debug, Clone)]
pub struct SchemeOutcome {
    /// The scheme label (`"none"`, `"static_95"`, `"static_acc"`).
    pub scheme: String,
    /// Total mispredictions over the family's cells under this scheme.
    pub mispredictions: u64,
    /// Aggregate MISPs/KI over the family's cells under this scheme.
    pub misp_per_ki: f64,
    /// Relative improvement vs. the family's `"none"` cells, in percent
    /// (positive = fewer mispredictions). `None` for the baseline row.
    pub delta_vs_none_pct: Option<f64>,
}

/// One family's row of the report.
#[derive(Debug, Clone)]
pub struct FamilyOutcome {
    /// The family.
    pub family: WorkloadFamily,
    /// Benchmarks the family contributed.
    pub benchmarks: usize,
    /// Grid cells the family contributed (benchmarks × predictors ×
    /// schemes).
    pub cells: usize,
    /// Dynamic branches simulated per scheme (identical across schemes).
    pub branches: u64,
    /// One aggregate per scheme, in [`schemes`] order.
    pub schemes: Vec<SchemeOutcome>,
}

/// The imported-trace identity check's outcome.
#[derive(Debug, Clone)]
pub struct IdentityCheck {
    /// The benchmark exported and re-imported.
    pub benchmark: String,
    /// Whether the imported cell's `SimStats` equal the generator cell's.
    pub stats_identical: bool,
    /// Whether the imported cell's report line renders identically.
    pub summary_identical: bool,
    /// What went wrong, when the check could not run (no trace written,
    /// import slots exhausted, …).
    pub error: Option<String>,
}

impl IdentityCheck {
    fn failed(benchmark: &str, error: String) -> Self {
        Self {
            benchmark: benchmark.to_string(),
            stats_identical: false,
            summary_identical: false,
            error: Some(error),
        }
    }

    /// Whether the round-trip held: both comparisons passed and nothing
    /// errored.
    pub fn passed(&self) -> bool {
        self.stats_identical && self.summary_identical && self.error.is_none()
    }
}

/// Everything one `bench-families` run produced.
#[derive(Debug)]
pub struct FamiliesReport {
    /// Whether this was a `--quick` (CI smoke) run.
    pub quick: bool,
    /// Profile/measure instruction budget per cell.
    pub instructions: u64,
    /// Total grid cells.
    pub cells: usize,
    /// One row per family, in [`FAMILIES`] order.
    pub families: Vec<FamilyOutcome>,
    /// The imported-trace identity check.
    pub identity: IdentityCheck,
}

impl FamiliesReport {
    /// Renders the report as the `BENCH_families.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"sdbp-bench-families/v1\",\n");
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        let predictors: Vec<String> = FAMILY_PREDICTORS
            .iter()
            .map(|k| format!("\"{}\"", k.name()))
            .collect();
        let scheme_names: Vec<String> = schemes()
            .iter()
            .map(|(label, _)| format!("\"{label}\""))
            .collect();
        out.push_str(&format!(
            "  \"grid\": {{\"cells\": {}, \"size_bytes\": {}, \"predictors\": [{}], \"schemes\": [{}], \"seed\": {}, \"instructions\": {}}},\n",
            self.cells,
            FAMILY_SIZE,
            predictors.join(", "),
            scheme_names.join(", "),
            crate::SEED,
            self.instructions,
        ));
        out.push_str("  \"families\": [\n");
        for (i, f) in self.families.iter().enumerate() {
            let schemes: Vec<String> = f
                .schemes
                .iter()
                .map(|s| {
                    let delta = match s.delta_vs_none_pct {
                        Some(d) => format!("{d:.2}"),
                        None => "null".to_string(),
                    };
                    format!(
                        "{{\"scheme\": \"{}\", \"mispredictions\": {}, \"misp_per_ki\": {:.4}, \"delta_vs_none_pct\": {}}}",
                        s.scheme, s.mispredictions, s.misp_per_ki, delta
                    )
                })
                .collect();
            out.push_str(&format!(
                "    {{\"family\": \"{}\", \"benchmarks\": {}, \"cells\": {}, \"branches\": {}, \"schemes\": [{}]}}{}\n",
                f.family,
                f.benchmarks,
                f.cells,
                f.branches,
                schemes.join(", "),
                if i + 1 < self.families.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        let error = match &self.identity.error {
            Some(e) => format!("\"{}\"", e.replace('\\', "\\\\").replace('"', "\\\"")),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "  \"imported_identity\": {{\"benchmark\": \"{}\", \"stats_identical\": {}, \"summary_identical\": {}, \"error\": {}}}\n",
            self.identity.benchmark,
            self.identity.stats_identical,
            self.identity.summary_identical,
            error,
        ));
        out.push_str("}\n");
        out
    }

    /// A terse human-readable table for the CLI.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "family grid ({} cells, {} bytes, seed {}, {} instructions/phase)\n",
            self.cells,
            FAMILY_SIZE,
            crate::SEED,
            self.instructions
        );
        for f in &self.families {
            out.push_str(&format!(
                "  {:<7} ({} benchmarks, {} cells, {} branches/scheme)\n",
                f.family.name(),
                f.benchmarks,
                f.cells,
                f.branches
            ));
            for s in &f.schemes {
                let delta = match s.delta_vs_none_pct {
                    Some(d) => format!("  {d:+.1}% vs none"),
                    None => String::new(),
                };
                out.push_str(&format!(
                    "    {:<11} {:>8.3} MISPs/KI{delta}\n",
                    s.scheme, s.misp_per_ki
                ));
            }
        }
        out.push_str(&format!(
            "  imported identity ({}): stats {}, summary {}{}\n",
            self.identity.benchmark,
            if self.identity.stats_identical {
                "identical"
            } else {
                "DIFFER"
            },
            if self.identity.summary_identical {
                "identical"
            } else {
                "DIFFER"
            },
            match &self.identity.error {
                Some(e) => format!(" ({e})"),
                None => String::new(),
            },
        ));
        out
    }
}

/// Builds one cell's spec with equal profile/measure budgets.
fn cell_spec(
    benchmark: Benchmark,
    kind: PredictorKind,
    scheme: SelectionScheme,
    instructions: u64,
) -> ExperimentSpec {
    let config =
        PredictorConfig::new(kind, FAMILY_SIZE).expect("family grid size is a power of two");
    let mut spec = ExperimentSpec::self_trained(benchmark, config, scheme).with_seed(crate::SEED);
    spec.profile_instructions = Some(instructions);
    spec.measure_instructions = Some(instructions);
    spec
}

/// The full family grid, family-major then benchmark, predictor, scheme.
pub fn grid_specs(quick: bool, instructions: u64) -> Vec<ExperimentSpec> {
    let mut specs = Vec::new();
    for family in FAMILIES {
        let members = Benchmark::family_members(family);
        let members: &[Benchmark] = if quick { &members[..1] } else { &members };
        for &benchmark in members {
            for kind in FAMILY_PREDICTORS {
                for (_, scheme) in schemes() {
                    specs.push(cell_spec(benchmark, kind, scheme, instructions));
                }
            }
        }
    }
    specs
}

/// Aggregates sweep reports into per-family, per-scheme rows.
pub fn family_rows(reports: &[Report]) -> Vec<FamilyOutcome> {
    FAMILIES
        .iter()
        .filter_map(|&family| {
            let of_family: Vec<&Report> = reports.iter().filter(|r| r.family() == family).collect();
            if of_family.is_empty() {
                return None;
            }
            let mut benchmarks: Vec<&str> = of_family.iter().map(|r| r.benchmark.name()).collect();
            benchmarks.sort_unstable();
            benchmarks.dedup();
            let mpki = |rs: &[&Report]| {
                let m: u64 = rs.iter().map(|r| r.stats.mispredictions).sum();
                let i: u64 = rs.iter().map(|r| r.stats.instructions).sum();
                (m, m as f64 * 1000.0 / i as f64)
            };
            let baseline: Vec<&Report> = of_family
                .iter()
                .filter(|r| r.scheme_label == "none")
                .copied()
                .collect();
            let (base_misp, base_mpki) = mpki(&baseline);
            let rows = schemes()
                .iter()
                .map(|(label, _)| {
                    let cells: Vec<&Report> = of_family
                        .iter()
                        .filter(|r| r.scheme_label == *label)
                        .copied()
                        .collect();
                    let (misp, misp_per_ki) = mpki(&cells);
                    let delta = (*label != "none" && base_misp > 0)
                        .then(|| (base_mpki - misp_per_ki) / base_mpki * 100.0);
                    SchemeOutcome {
                        scheme: (*label).to_string(),
                        mispredictions: misp,
                        misp_per_ki,
                        delta_vs_none_pct: delta,
                    }
                })
                .collect();
            Some(FamilyOutcome {
                family,
                benchmarks: benchmarks.len(),
                cells: of_family.len(),
                branches: baseline.iter().map(|r| r.stats.branches).sum(),
                schemes: rows,
            })
        })
        .collect()
}

/// Exports `benchmark`'s measurement stream to `path`, re-admits it as an
/// imported benchmark, runs the same cell both ways, and compares.
///
/// The export covers exactly the cell's instruction budget on the
/// measurement input at the harness seed; self-trained cells profile and
/// measure the *same* stream, so the file window covers both passes and
/// the imported cell must reproduce the generator cell bit for bit.
pub fn identity_check(benchmark: Benchmark, instructions: u64, path: &Path) -> IdentityCheck {
    let name = benchmark.name();
    let trace = open_source(benchmark, InputSet::Ref, crate::SEED)
        .take_instructions(instructions)
        .collect_trace();
    let mut bytes = Vec::new();
    if let Err(e) = write_binary(&mut bytes, &trace) {
        return IdentityCheck::failed(name, format!("export failed: {e}"));
    }
    if let Err(e) = std::fs::write(path, &bytes) {
        return IdentityCheck::failed(name, format!("cannot write {}: {e}", path.display()));
    }
    let imported = match sdbp_workloads::imports::register(path) {
        Ok(b) => b,
        Err(e) => return IdentityCheck::failed(name, format!("admission failed: {e}")),
    };

    let scheme = SelectionScheme::static_95();
    let cache = Arc::new(ArtifactCache::new());
    let run = |b: Benchmark| {
        let specs = vec![cell_spec(b, PredictorKind::Gshare, scheme, instructions)];
        Sweep::new(specs)
            .with_cache(Arc::clone(&cache))
            .run()
            .into_reports()
            .expect("identity cells are well-formed")
            .remove(0)
    };
    let generated = run(benchmark);
    let replayed = run(imported);
    IdentityCheck {
        benchmark: name.to_string(),
        stats_identical: generated.stats == replayed.stats,
        summary_identical: generated.summary() == replayed.summary(),
        error: None,
    }
}

/// Runs the full family benchmark: the grid through the production sweep
/// engine, per-family aggregation, and the imported-trace identity check.
/// `progress` is invoked once per finished family row.
pub fn run(quick: bool, mut progress: impl FnMut(&FamilyOutcome)) -> FamiliesReport {
    let instructions = if quick {
        QUICK_INSTRUCTIONS
    } else {
        FULL_INSTRUCTIONS
    };
    let specs = grid_specs(quick, instructions);
    let cells = specs.len();
    let reports = Sweep::new(specs)
        .with_cache(Arc::new(ArtifactCache::new()))
        .run()
        .into_reports()
        .expect("family grid specs are well-formed");
    let families = family_rows(&reports);
    for f in &families {
        progress(f);
    }

    let dir = std::env::temp_dir();
    let path = dir.join(format!(
        "sdbp-families-identity-{}.sdbt",
        std::process::id()
    ));
    let identity = identity_check(Benchmark::Gcc, instructions, &path);
    std::fs::remove_file(&path).ok();

    FamiliesReport {
        quick,
        instructions,
        cells,
        families,
        identity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_every_family_and_scheme() {
        let specs = grid_specs(false, 1000);
        // 6 spec95 + 2 server + 2 h2p benchmarks, 3 predictors, 3 schemes.
        assert_eq!(specs.len(), 10 * 3 * 3);
        let quick = grid_specs(true, 1000);
        assert_eq!(quick.len(), 3 * 3 * 3);
        for family in FAMILIES {
            assert!(quick.iter().any(|s| s.benchmark.family() == family));
        }
    }

    #[test]
    fn family_rows_aggregate_per_family_with_deltas() {
        let instructions = 60_000;
        let mut specs = Vec::new();
        for benchmark in [Benchmark::Compress, Benchmark::H2pChurn] {
            for (_, scheme) in schemes() {
                specs.push(cell_spec(
                    benchmark,
                    PredictorKind::Gshare,
                    scheme,
                    instructions,
                ));
            }
        }
        let reports = Sweep::new(specs)
            .with_threads(1)
            .run()
            .into_reports()
            .unwrap();
        let rows = family_rows(&reports);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].family, WorkloadFamily::Spec95);
        assert_eq!(rows[1].family, WorkloadFamily::H2p);
        for row in &rows {
            assert_eq!(row.cells, 3);
            assert!(row.branches > 0);
            assert_eq!(row.schemes[0].scheme, "none");
            assert!(row.schemes[0].delta_vs_none_pct.is_none());
            assert!(row.schemes[1].delta_vs_none_pct.is_some());
        }
        // The H2P family is history-resistant by construction: its dynamic
        // baseline must mispredict far more often than calibrated SPEC95.
        assert!(rows[1].schemes[0].misp_per_ki > rows[0].schemes[0].misp_per_ki);
    }

    #[test]
    fn imported_cells_are_bit_identical_to_generator_cells() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "sdbp-families-test-{}-{:?}.sdbt",
            std::process::id(),
            std::thread::current().id()
        ));
        let check = identity_check(Benchmark::Compress, 80_000, &path);
        std::fs::remove_file(&path).ok();
        assert!(
            check.passed(),
            "identity check failed: stats {}, summary {}, error {:?}",
            check.stats_identical,
            check.summary_identical,
            check.error
        );
    }

    #[test]
    fn report_json_is_well_formed_enough() {
        let report = FamiliesReport {
            quick: true,
            instructions: 1000,
            cells: 27,
            families: vec![FamilyOutcome {
                family: WorkloadFamily::Server,
                benchmarks: 1,
                cells: 9,
                branches: 5000,
                schemes: vec![
                    SchemeOutcome {
                        scheme: "none".into(),
                        mispredictions: 400,
                        misp_per_ki: 13.1,
                        delta_vs_none_pct: None,
                    },
                    SchemeOutcome {
                        scheme: "static_95".into(),
                        mispredictions: 380,
                        misp_per_ki: 12.4,
                        delta_vs_none_pct: Some(5.0),
                    },
                ],
            }],
            identity: IdentityCheck {
                benchmark: "gcc".into(),
                stats_identical: true,
                summary_identical: true,
                error: None,
            },
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"sdbp-bench-families/v1\""));
        assert!(json.contains("\"family\": \"server\""));
        assert!(json.contains("\"delta_vs_none_pct\": 5.00"));
        assert!(json.contains("\"delta_vs_none_pct\": null"));
        assert!(json.contains("\"imported_identity\""));
        assert!(json.contains("\"stats_identical\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(report.summary().contains("imported identity (gcc)"));
        assert!(report.summary().contains("static_95"));
    }
}
