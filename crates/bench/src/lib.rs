//! Shared plumbing for the experiment harness binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of Patil &
//! Emer (HPCA 2000); this library holds the conventions they share — the
//! experiment seed, instruction budgets, and per-run report helpers — so
//! that every harness binary measures the *same* workload streams.
//!
//! Run an individual experiment with, e.g.:
//!
//! ```text
//! cargo run --release -p sdbp-bench --bin table2
//! ```
//!
//! or everything at once with `--bin all_experiments`. Budgets scale with
//! the `SDBP_SCALE` environment variable (default 1.0; e.g. `SDBP_SCALE=0.1`
//! for a quick smoke pass).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sdbp_core::{ExperimentSpec, Lab, Report, Sweep};
use sdbp_predictors::{PredictorConfig, PredictorKind};
use sdbp_profiles::SelectionScheme;
use sdbp_workloads::Benchmark;

/// The fixed seed every harness binary uses, so results are directly
/// comparable across tables and reruns.
pub const SEED: u64 = 2000;

/// Default profiling budget (instructions) before scaling.
pub const PROFILE_INSTRUCTIONS: u64 = 6_000_000;

/// Default measurement budget (instructions) before scaling.
pub const MEASURE_INSTRUCTIONS: u64 = 12_000_000;

/// The predictor sizes (bytes) swept by the figure experiments.
pub const SIZE_SWEEP: [usize; 7] = [
    1024,
    2 * 1024,
    4 * 1024,
    8 * 1024,
    16 * 1024,
    32 * 1024,
    64 * 1024,
];

/// The fixed size used by per-predictor comparisons (Table 2, Figures 7–12).
pub const COMPARISON_SIZE: usize = 8 * 1024;

/// Reads the `SDBP_SCALE` budget multiplier from the environment.
pub fn scale() -> f64 {
    std::env::var("SDBP_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| *s > 0.0)
        .unwrap_or(1.0)
}

/// The scaled profiling budget.
pub fn profile_budget() -> u64 {
    ((PROFILE_INSTRUCTIONS as f64) * scale()) as u64
}

/// The scaled measurement budget.
pub fn measure_budget() -> u64 {
    ((MEASURE_INSTRUCTIONS as f64) * scale()) as u64
}

/// Builds the standard self-trained spec used across harness binaries.
pub fn spec(
    benchmark: Benchmark,
    kind: PredictorKind,
    size_bytes: usize,
    scheme: SelectionScheme,
) -> ExperimentSpec {
    let predictor =
        PredictorConfig::new(kind, size_bytes).expect("harness sizes are powers of two");
    let mut s = ExperimentSpec::self_trained(benchmark, predictor, scheme).with_seed(SEED);
    s.profile_instructions = Some(profile_budget());
    s.measure_instructions = Some(measure_budget());
    s
}

/// Runs a spec in a lab and prints its one-line summary as progress.
pub fn run_verbose(lab: &Lab, s: &ExperimentSpec) -> Report {
    let report = lab.run(s).expect("harness specs are well-formed");
    eprintln!("  {report}");
    report
}

/// Runs a grid of specs through the parallel [`Sweep`] engine, sharing the
/// lab's artifact cache so profiles and traces computed by earlier grids are
/// reused. Prints one progress line per cell and a summary line — worker
/// threads, wall time, speedup, and cache hit/miss counters — to stderr.
/// Reports come back in spec order, bit-identical to a serial run.
///
/// Every cell is pre-flighted through `sdbp-check`'s coded diagnostics (on
/// top of the sweep's strict-mode validation), so a misconfigured grid
/// fails fast with `SDBP`-coded reasons instead of wasting a long run.
///
/// Thread count follows the engine's resolution: the `SDBP_THREADS`
/// environment variable if set, otherwise all available cores.
///
/// With `SDBP_STORE=<dir>` set, every grid becomes durable: the `n`-th
/// grid of the process writes its manifest under `<dir>/grid-<n>`, and
/// profiles persist in the store's disk tier across processes. Adding
/// `SDBP_RESUME=1` replays cells already completed in those manifests.
/// Neither variable changes anything written to stdout — replayed reports
/// are byte-identical to freshly computed ones.
pub fn run_grid(lab: &Lab, specs: Vec<ExperimentSpec>) -> Vec<Report> {
    static GRID_COUNTER: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let mut sweep = Sweep::new(specs)
        .with_cache(lab.cache())
        .with_verbose(true)
        .with_preflight(sdbp_check::preflight_hook());
    if let Some(root) = std::env::var_os("SDBP_STORE").filter(|v| !v.is_empty()) {
        let n = GRID_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        sweep = sweep
            .with_store(std::path::Path::new(&root).join(format!("grid-{n:03}")))
            .with_resume(std::env::var_os("SDBP_RESUME").is_some_and(|v| v == "1"));
    }
    let result = sweep.run();
    eprintln!("  sweep: {}", result.summary());
    result
        .into_reports()
        .expect("harness specs are well-formed")
}

/// Formats a signed percentage improvement Table 3/4-style.
pub fn improvement_pct(report: &Report, baseline: &Report) -> String {
    format!("{:+.1}%", report.improvement_over(baseline) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builder_produces_runnable_specs() {
        let s = spec(
            Benchmark::Compress,
            PredictorKind::Gshare,
            1024,
            SelectionScheme::None,
        );
        assert_eq!(s.seed, SEED);
        assert!(s.measure_instructions.unwrap() > 0);
    }

    #[test]
    fn scale_defaults_to_one() {
        // Only meaningful when SDBP_SCALE is unset in the test environment.
        if std::env::var("SDBP_SCALE").is_err() {
            assert_eq!(scale(), 1.0);
            assert_eq!(measure_budget(), MEASURE_INSTRUCTIONS);
        }
    }

    #[test]
    fn size_sweep_is_the_papers_range() {
        assert_eq!(SIZE_SWEEP[0], 1024);
        assert_eq!(*SIZE_SWEEP.last().unwrap(), 64 * 1024);
        assert!(SIZE_SWEEP.windows(2).all(|w| w[1] == 2 * w[0]));
    }
}
pub mod experiments;
pub mod families;
pub mod frontier;
pub mod kernel;
pub mod passes;
