//! The predictor-frontier ablation: do static hints survive modern
//! predictors?
//!
//! The paper measures static hints against the tabular predictors of its
//! era; its future-work section asks whether collision-driven selection
//! still buys anything once the dynamic side has tags or weights. This
//! grid answers that question in one sweep: the paper's strongest tabular
//! designs (gshare, bi-mode, 2bcgskew) next to the post-paper frontier
//! (hashed perceptron, TAGE-lite), each under every selection scheme
//! including the static-ranking-driven `Static_Collide`.
//!
//! `Static_Collide` needs the predictor's index function, so its cells are
//! skipped for the analysis-opaque hybrids (bi-mode, 2bcgskew) and render
//! as `n/a` — exactly what `sdbp check` warns about with SDBP042.
//!
//! Consumed by the `sdbp bench-frontier` subcommand, which writes the
//! machine-readable `BENCH_frontier.json` used by CI and
//! `docs/predictors.md`.

use sdbp_core::{ExperimentSpec, Report, Sweep};
use sdbp_predictors::{PredictorConfig, PredictorKind};
use sdbp_profiles::SelectionScheme;
use sdbp_workloads::Benchmark;

/// Per-phase instruction budget of the full grid (profile == measure).
pub const FULL_INSTRUCTIONS: u64 = 4_000_000;

/// Per-phase instruction budget under `--quick` (CI smoke mode).
pub const QUICK_INSTRUCTIONS: u64 = 120_000;

/// The predictors of the frontier comparison: the paper's strongest
/// tabular designs next to the post-paper frontier, all at
/// [`crate::COMPARISON_SIZE`].
pub const FRONTIER_KINDS: [PredictorKind; 5] = [
    PredictorKind::Gshare,
    PredictorKind::BiMode,
    PredictorKind::TwoBcGskew,
    PredictorKind::Perceptron,
    PredictorKind::TageLite,
];

/// The selection schemes ablated per predictor (Ablation C's set with
/// `Static_Collide` in place of the measured `Static_Col`).
pub fn frontier_schemes() -> [SelectionScheme; 5] {
    [
        SelectionScheme::None,
        SelectionScheme::static_95(),
        SelectionScheme::static_acc(),
        SelectionScheme::Factor { factor: 1.05 },
        SelectionScheme::static_collide(),
    ]
}

/// One executed grid cell.
#[derive(Debug, Clone)]
pub struct FrontierCell {
    /// The workload.
    pub benchmark: Benchmark,
    /// The dynamic predictor.
    pub predictor: PredictorKind,
    /// The selection-scheme label.
    pub scheme: String,
    /// Mispredictions per thousand instructions.
    pub misp_per_ki: f64,
    /// Static hints selected.
    pub hints: u64,
    /// Destructive collisions measured in the dynamic tables.
    pub destructive_collisions: u64,
}

impl FrontierCell {
    fn json(&self) -> String {
        format!(
            "{{\"benchmark\": \"{}\", \"predictor\": \"{}\", \"scheme\": \"{}\", \"misp_per_ki\": {:.4}, \"hints\": {}, \"destructive_collisions\": {}}}",
            self.benchmark.name(),
            self.predictor.name(),
            self.scheme,
            self.misp_per_ki,
            self.hints,
            self.destructive_collisions,
        )
    }
}

/// Everything one `bench-frontier` run produced.
#[derive(Debug)]
pub struct FrontierReport {
    /// Whether this was a `--quick` (CI smoke) run.
    pub quick: bool,
    /// Profile/measure instruction budget per cell.
    pub instructions: u64,
    /// Benchmarks in the grid.
    pub benchmarks: Vec<Benchmark>,
    /// Executed cells, in benchmark → predictor → scheme order.
    pub cells: Vec<FrontierCell>,
    /// Cells skipped because `Static_Collide` cannot analyze the
    /// predictor's index function (rendered `n/a`).
    pub skipped: usize,
}

impl FrontierReport {
    /// Mean MISPs/KI of one (predictor, scheme) column across the grid's
    /// benchmarks; `None` when the combination was skipped.
    pub fn mean_misp(&self, kind: PredictorKind, scheme: &str) -> Option<f64> {
        let column: Vec<f64> = self
            .cells
            .iter()
            .filter(|c| c.predictor == kind && c.scheme == scheme)
            .map(|c| c.misp_per_ki)
            .collect();
        if column.is_empty() {
            return None;
        }
        Some(column.iter().sum::<f64>() / column.len() as f64)
    }

    /// Renders the report as the `BENCH_frontier.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"sdbp-bench-frontier/v1\",\n");
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str(&format!(
            "  \"grid\": {{\"benchmarks\": {}, \"cells\": {}, \"skipped\": {}, \"size_bytes\": {}, \"seed\": {}, \"instructions\": {}}},\n",
            self.benchmarks.len(),
            self.cells.len(),
            self.skipped,
            crate::COMPARISON_SIZE,
            crate::SEED,
            self.instructions,
        ));
        out.push_str("  \"cells\": [\n");
        for (i, cell) in self.cells.iter().enumerate() {
            let comma = if i + 1 < self.cells.len() { "," } else { "" };
            out.push_str(&format!("    {}{comma}\n", cell.json()));
        }
        out.push_str("  ],\n");
        out.push_str("  \"mean_misp_per_ki\": {\n");
        let schemes = frontier_schemes();
        for (ki, kind) in FRONTIER_KINDS.iter().enumerate() {
            out.push_str(&format!("    \"{}\": {{", kind.name()));
            for (si, scheme) in schemes.iter().enumerate() {
                let comma = if si + 1 < schemes.len() { ", " } else { "" };
                match self.mean_misp(*kind, &scheme.label()) {
                    Some(mean) => {
                        out.push_str(&format!("\"{}\": {:.4}{comma}", scheme.label(), mean))
                    }
                    None => out.push_str(&format!("\"{}\": null{comma}", scheme.label())),
                }
            }
            let comma = if ki + 1 < FRONTIER_KINDS.len() {
                ","
            } else {
                ""
            };
            out.push_str(&format!("}}{comma}\n"));
        }
        out.push_str("  }\n");
        out.push_str("}\n");
        out
    }

    /// A terse human-readable table for the CLI: mean MISPs/KI per
    /// predictor and scheme, with the best static scheme's improvement.
    pub fn summary(&self) -> String {
        let schemes = frontier_schemes();
        let mut out = format!(
            "frontier grid ({} benchmarks, {} cells, {} skipped, {} B predictors)\n",
            self.benchmarks.len(),
            self.cells.len(),
            self.skipped,
            crate::COMPARISON_SIZE,
        );
        out.push_str(&format!(
            "  {:<12}{:>11}{:>11}{:>11}{:>15}{:>16}\n",
            "predictor", "none", "static_95", "static_acc", "static_fac1.05", "static_collide"
        ));
        for kind in FRONTIER_KINDS {
            out.push_str(&format!("  {:<12}", kind.name()));
            for scheme in &schemes {
                let width = match scheme.label().as_str() {
                    "static_fac1.05" => 15,
                    "static_collide" => 16,
                    _ => 11,
                };
                match self.mean_misp(kind, &scheme.label()) {
                    Some(mean) => out.push_str(&format!("{:>width$.3}", mean)),
                    None => out.push_str(&format!("{:>width$}", "n/a")),
                }
            }
            out.push('\n');
        }
        out
    }
}

/// The frontier spec grid: every [`FRONTIER_KINDS`] predictor under every
/// [`frontier_schemes`] scheme on each benchmark, minus the
/// `Static_Collide` cells whose predictor is opaque to the interference
/// analyzer. Returns the specs plus the skipped-cell count.
pub fn frontier_specs(benchmarks: &[Benchmark], instructions: u64) -> (Vec<ExperimentSpec>, usize) {
    let mut specs = Vec::new();
    let mut skipped = 0usize;
    for &benchmark in benchmarks {
        for kind in FRONTIER_KINDS {
            let config = PredictorConfig::new(kind, crate::COMPARISON_SIZE)
                .expect("the comparison size is a power of two");
            for scheme in frontier_schemes() {
                if scheme.needs_interference_ranking() && !sdbp_profiles::exposes_indices(config) {
                    skipped += 1;
                    continue;
                }
                let mut spec =
                    ExperimentSpec::self_trained(benchmark, config, scheme).with_seed(crate::SEED);
                spec.profile_instructions = Some(instructions);
                spec.measure_instructions = Some(instructions);
                specs.push(spec);
            }
        }
    }
    (specs, skipped)
}

fn cell_of(spec: &ExperimentSpec, report: &Report) -> FrontierCell {
    FrontierCell {
        benchmark: spec.benchmark,
        predictor: spec.predictor.kind(),
        scheme: spec.scheme.label(),
        misp_per_ki: report.stats.misp_per_ki(),
        hints: report.hints as u64,
        destructive_collisions: report.stats.collisions.destructive,
    }
}

/// Runs the frontier grid over `benchmarks` at `instructions` per phase,
/// with `progress` invoked as each cell's report lands. The sweep's
/// default lockstep grouping rides all of a benchmark's cells on one
/// measurement traversal; results are bit-identical to sequential runs.
pub fn run_with(
    benchmarks: &[Benchmark],
    instructions: u64,
    quick: bool,
    mut progress: impl FnMut(&FrontierCell),
) -> FrontierReport {
    let (specs, skipped) = frontier_specs(benchmarks, instructions);
    let reports = Sweep::new(specs.clone())
        .with_preflight(sdbp_check::preflight_hook())
        .run()
        .into_reports()
        .expect("frontier specs are well-formed");
    let cells: Vec<FrontierCell> = specs
        .iter()
        .zip(&reports)
        .map(|(spec, report)| {
            let cell = cell_of(spec, report);
            progress(&cell);
            cell
        })
        .collect();
    FrontierReport {
        quick,
        instructions,
        benchmarks: benchmarks.to_vec(),
        cells,
        skipped,
    }
}

/// Runs the full frontier benchmark in `--quick` (CI smoke) or full mode.
pub fn run(quick: bool, progress: impl FnMut(&FrontierCell)) -> FrontierReport {
    let instructions = if quick {
        QUICK_INSTRUCTIONS
    } else {
        FULL_INSTRUCTIONS
    };
    let benchmarks: &[Benchmark] = if quick {
        &[Benchmark::Compress, Benchmark::Ijpeg]
    } else {
        &Benchmark::ALL
    };
    run_with(benchmarks, instructions, quick, progress)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collide_cells_are_skipped_for_opaque_predictors() {
        let (specs, skipped) = frontier_specs(&[Benchmark::Compress], 60_000);
        // 5 predictors × 5 schemes, minus collide on bi-mode and 2bcgskew.
        assert_eq!(specs.len(), 23);
        assert_eq!(skipped, 2);
        assert!(specs.iter().all(|s| !(s.scheme.needs_interference_ranking()
            && matches!(
                s.predictor.kind(),
                PredictorKind::BiMode | PredictorKind::TwoBcGskew
            ))));
    }

    #[test]
    fn every_frontier_spec_passes_preflight() {
        let (specs, _) = frontier_specs(&Benchmark::ALL, FULL_INSTRUCTIONS);
        for spec in specs {
            sdbp_check::preflight(&spec).expect("frontier spec must pre-flight");
        }
    }

    #[test]
    fn report_json_is_well_formed_enough() {
        let report = run_with(&[Benchmark::Compress], 60_000, true, |_| {});
        assert_eq!(report.cells.len(), 23);
        assert_eq!(report.skipped, 2);
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"sdbp-bench-frontier/v1\""));
        assert!(json.contains("\"tage-lite\""));
        assert!(json.contains("\"perceptron\""));
        assert!(json.contains("\"static_collide\""));
        // Skipped columns serialize as null, never as fabricated numbers.
        assert!(json.contains("null"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // Every executed (predictor, scheme) column has a mean; the
        // opaque × collide columns have none.
        assert!(report
            .mean_misp(PredictorKind::Perceptron, "static_collide")
            .is_some());
        assert!(report
            .mean_misp(PredictorKind::BiMode, "static_collide")
            .is_none());
        // Collide selects a nonempty hint set somewhere in the grid.
        assert!(report
            .cells
            .iter()
            .any(|c| c.scheme == "static_collide" && c.hints > 0));
        let summary = report.summary();
        assert!(summary.contains("n/a"));
        assert!(summary.contains("perceptron"));
    }

    #[test]
    fn identical_runs_reproduce_identical_cells() {
        let a = run_with(&[Benchmark::Compress], 60_000, true, |_| {});
        let b = run_with(&[Benchmark::Compress], 60_000, true, |_| {});
        assert_eq!(a.to_json(), b.to_json());
    }
}
