//! Criterion: trace codec throughput (encode/decode, binary and text).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sdbp_trace::{read_binary, read_text, write_binary, write_text, BranchSource, Trace};
use sdbp_workloads::{Benchmark, InputSet, Workload};

fn sample_trace() -> Trace {
    Workload::spec95(Benchmark::Compress)
        .generator(InputSet::Train, 7)
        .take_instructions(500_000)
        .collect_trace()
}

fn bench_codec(c: &mut Criterion) {
    let trace = sample_trace();
    let events = trace.len() as u64;

    let mut encoded_binary = Vec::new();
    write_binary(&mut encoded_binary, &trace).expect("in-memory write");
    let mut encoded_text = Vec::new();
    write_text(&mut encoded_text, &trace).expect("in-memory write");

    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Elements(events));
    group.bench_function("write_binary", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(encoded_binary.len());
            write_binary(&mut buf, &trace).expect("in-memory write");
            buf.len()
        })
    });
    group.bench_function("read_binary", |b| {
        b.iter(|| {
            read_binary(&mut &encoded_binary[..])
                .expect("valid payload")
                .len()
        })
    });
    group.bench_function("write_text", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(encoded_text.len());
            write_text(&mut buf, &trace).expect("in-memory write");
            buf.len()
        })
    });
    group.bench_function("read_text", |b| {
        b.iter(|| {
            read_text(&mut &encoded_text[..])
                .expect("valid payload")
                .len()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_codec
}
criterion_main!(benches);
