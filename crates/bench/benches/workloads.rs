//! Criterion: synthetic workload generation throughput (events/second per
//! benchmark model), plus program materialization cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sdbp_trace::BranchSource;
use sdbp_workloads::{Benchmark, InputSet, Workload};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate");
    const EVENTS: u64 = 100_000;
    group.throughput(Throughput::Elements(EVENTS));
    for benchmark in Benchmark::ALL {
        // Materialize once; measure pure event generation.
        let program = Workload::spec95(benchmark).program(InputSet::Ref, 2000);
        group.bench_with_input(
            BenchmarkId::from_parameter(benchmark),
            &program,
            |b, program| {
                b.iter(|| {
                    let mut gen = sdbp_workloads::WorkloadGenerator::new(program.clone(), 2000);
                    let mut taken = 0u64;
                    for _ in 0..EVENTS {
                        let e = gen.next_event().expect("generator is infinite");
                        taken += u64::from(e.taken);
                    }
                    taken
                })
            },
        );
    }
    group.finish();
}

fn bench_materialization(c: &mut Criterion) {
    let mut group = c.benchmark_group("materialize");
    for benchmark in [Benchmark::Compress, Benchmark::Gcc] {
        group.bench_with_input(
            BenchmarkId::from_parameter(benchmark),
            &benchmark,
            |b, &benchmark| b.iter(|| Workload::spec95(benchmark).program(InputSet::Ref, 2000)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_generation, bench_materialization
}
criterion_main!(benches);
