//! Criterion: the simulation kernel (packed tables + enum dispatch +
//! chunked streaming) against the pre-optimization reference kernel
//! (naive table, `Box<dyn>`, per-event `next_event`) on the same streams.
//!
//! `sdbp bench-kernel` runs the same measurements and writes
//! `BENCH_simkernel.json`; this bench is the interactive `cargo bench`
//! entry point for the same kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sdbp_bench::kernel::{
    baseline_kernel_pass, current_kernel_pass, workload_suite, BASELINE_SIZE, GSHARE_SIZES,
};
use sdbp_core::ArtifactCache;
use sdbp_predictors::{PredictorConfig, PredictorKind};

const INSTRUCTIONS: u64 = 1_000_000;

fn bench_kernels(c: &mut Criterion) {
    let suite = workload_suite(&ArtifactCache::new(), INSTRUCTIONS);
    let events: u64 = suite.iter().map(|e| e.len() as u64).sum();

    let mut group = c.benchmark_group("simkernel");
    group.throughput(Throughput::Elements(events));
    group.bench_function("baseline/gshare-reference-4KB", |b| {
        b.iter(|| baseline_kernel_pass(BASELINE_SIZE, &suite))
    });
    for size in GSHARE_SIZES {
        let config = PredictorConfig::new(PredictorKind::Gshare, size).expect("power of two");
        group.bench_with_input(
            BenchmarkId::new("current/gshare", format!("{}KB", size / 1024)),
            &config,
            |b, config| b.iter(|| current_kernel_pass(config, &suite)),
        );
    }
    for kind in PredictorKind::ALL {
        if kind == PredictorKind::Gshare {
            continue;
        }
        let config = PredictorConfig::new(kind, BASELINE_SIZE).expect("power of two");
        group.bench_with_input(BenchmarkId::new("current", kind), &config, |b, config| {
            b.iter(|| current_kernel_pass(config, &suite))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_kernels
}
criterion_main!(benches);
