//! Criterion: raw predict/update throughput of every dynamic predictor on a
//! fixed pre-generated branch stream (events/second per scheme).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sdbp_predictors::{PredictorConfig, PredictorKind};
use sdbp_trace::{BranchEvent, BranchSource};
use sdbp_workloads::{Benchmark, InputSet, Workload};

fn fixed_stream(n_instructions: u64) -> Vec<BranchEvent> {
    Workload::spec95(Benchmark::Gcc)
        .generator(InputSet::Ref, 2000)
        .take_instructions(n_instructions)
        .collect_trace()
        .into_iter()
        .collect()
}

fn bench_predictors(c: &mut Criterion) {
    let events = fixed_stream(400_000);
    let mut group = c.benchmark_group("predict_update");
    group.throughput(Throughput::Elements(events.len() as u64));
    for kind in PredictorKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            b.iter(|| {
                let mut p = PredictorConfig::new(kind, 8 * 1024)
                    .expect("valid size")
                    .build();
                let mut mispredicts = 0u64;
                for e in &events {
                    let pred = p.predict(e.pc);
                    mispredicts += u64::from(pred.taken != e.taken);
                    p.update(e.pc, e.taken);
                }
                mispredicts
            })
        });
    }
    group.finish();
}

fn bench_predictor_sizes(c: &mut Criterion) {
    let events = fixed_stream(200_000);
    let mut group = c.benchmark_group("gshare_size");
    group.throughput(Throughput::Elements(events.len() as u64));
    for size_kb in [1usize, 8, 64] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{size_kb}KB")),
            &size_kb,
            |b, &size_kb| {
                b.iter(|| {
                    let mut p = PredictorConfig::new(PredictorKind::Gshare, size_kb * 1024)
                        .expect("valid size")
                        .build();
                    let mut mispredicts = 0u64;
                    for e in &events {
                        let pred = p.predict(e.pc);
                        mispredicts += u64::from(pred.taken != e.taken);
                        p.update(e.pc, e.taken);
                    }
                    mispredicts
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_predictors, bench_predictor_sizes
}
criterion_main!(benches);
