//! Criterion: one miniature kernel per paper experiment, so `cargo bench`
//! tracks the cost of every table/figure pipeline (profile → select →
//! simulate) at a reduced instruction budget. The full-size reports come
//! from the `sdbp-bench` binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdbp_core::{run_experiment, ExperimentSpec, ProfileSource, ShiftPolicy};
use sdbp_predictors::{PredictorConfig, PredictorKind};
use sdbp_profiles::SelectionScheme;
use sdbp_workloads::Benchmark;

const KERNEL_INSTRUCTIONS: u64 = 150_000;

fn kernel(
    benchmark: Benchmark,
    kind: PredictorKind,
    size: usize,
    scheme: SelectionScheme,
) -> ExperimentSpec {
    ExperimentSpec::self_trained(
        benchmark,
        PredictorConfig::new(kind, size).expect("valid size"),
        scheme,
    )
    .with_instructions(KERNEL_INSTRUCTIONS)
}

/// Table 2 kernel: one pure dynamic run per paper predictor.
fn bench_table2_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_kernel");
    for kind in PredictorKind::PAPER {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            b.iter(|| {
                run_experiment(&kernel(
                    Benchmark::Gcc,
                    kind,
                    8 * 1024,
                    SelectionScheme::None,
                ))
                .expect("well-formed spec")
                .stats
                .mispredictions
            })
        });
    }
    group.finish();
}

/// Figures 1–6 kernel: gshare with the static_acc pipeline (profile +
/// select + simulate) at two sizes.
fn bench_fig1_6_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_6_kernel");
    for size_kb in [2usize, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{size_kb}KB")),
            &size_kb,
            |b, &size_kb| {
                b.iter(|| {
                    run_experiment(&kernel(
                        Benchmark::Gcc,
                        PredictorKind::Gshare,
                        size_kb * 1024,
                        SelectionScheme::static_acc(),
                    ))
                    .expect("well-formed spec")
                    .stats
                    .mispredictions
                })
            },
        );
    }
    group.finish();
}

/// Figures 7–12 / Table 3 kernel: 2bcgskew under each static scheme.
fn bench_fig7_12_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_12_kernel");
    for (label, scheme) in [
        ("none", SelectionScheme::None),
        ("static_95", SelectionScheme::static_95()),
        ("static_acc", SelectionScheme::static_acc()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &scheme, |b, scheme| {
            b.iter(|| {
                run_experiment(&kernel(
                    Benchmark::M88ksim,
                    PredictorKind::TwoBcGskew,
                    8 * 1024,
                    *scheme,
                ))
                .expect("well-formed spec")
                .stats
                .mispredictions
            })
        });
    }
    group.finish();
}

/// Table 4 kernel: shift vs no-shift.
fn bench_table4_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_kernel");
    for (label, shift) in [
        ("no-shift", ShiftPolicy::NoShift),
        ("shift", ShiftPolicy::Shift),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &shift, |b, shift| {
            b.iter(|| {
                run_experiment(
                    &kernel(
                        Benchmark::Go,
                        PredictorKind::TwoBcGskew,
                        8 * 1024,
                        SelectionScheme::static_acc(),
                    )
                    .with_shift(*shift),
                )
                .expect("well-formed spec")
                .stats
                .mispredictions
            })
        });
    }
    group.finish();
}

/// Table 5 / Figure 13 kernel: the cross-training pipeline variants.
fn bench_fig13_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_kernel");
    for (label, profile) in [
        ("self", ProfileSource::SelfTrained),
        ("cross", ProfileSource::CrossTrained),
        (
            "merged",
            ProfileSource::MergedCrossTrained {
                max_bias_change: 0.05,
            },
        ),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &profile,
            |b, profile| {
                b.iter(|| {
                    run_experiment(
                        &kernel(
                            Benchmark::Perl,
                            PredictorKind::Gshare,
                            16 * 1024,
                            SelectionScheme::static_95(),
                        )
                        .with_profile(*profile),
                    )
                    .expect("well-formed spec")
                    .stats
                    .mispredictions
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_table2_kernel,
        bench_fig1_6_kernel,
        bench_fig7_12_kernel,
        bench_table4_kernel,
        bench_fig13_kernel
}
criterion_main!(benches);
