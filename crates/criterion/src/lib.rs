//! Offline, minimal drop-in for the subset of the `criterion` API this
//! workspace's benches use.
//!
//! The build environment has no access to crates.io, so the real `criterion`
//! crate cannot be fetched. This stand-in keeps `cargo bench` working with
//! the same bench sources: it runs each benchmark closure in a simple
//! warm-up + timed loop and prints mean wall-clock time per iteration (plus
//! throughput when declared). It performs no statistical analysis, keeps no
//! history, and draws no plots — it exists so the bench targets compile and
//! give usable relative numbers offline. Swapping the real dependency back
//! in is a one-line change in the workspace manifest.

#![forbid(unsafe_code)]

pub use std::hint::black_box;

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Minimum number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent running the closure untimed before measurement.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Target wall-clock duration of the timed loop.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            config: self.clone(),
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self, None, &mut f);
        self
    }
}

/// A set of related benchmarks sharing a name prefix and throughput unit.
pub struct BenchmarkGroup {
    name: String,
    config: Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Declares the work per iteration, enabling rate reporting.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Overrides the minimum sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Overrides the measurement duration for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Benchmarks a function under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, &self.config, self.throughput, &mut f);
        self
    }

    /// Benchmarks a function parameterized by `input` under `group/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, &self.config, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// A benchmark identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from a parameter value alone.
    pub fn from_parameter(p: impl Display) -> Self {
        Self(p.to_string())
    }

    /// An id with a function name and a parameter value.
    pub fn new(function: impl Into<String>, p: impl Display) -> Self {
        Self(format!("{}/{}", function.into(), p))
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// The timing context handed to benchmark closures.
pub struct Bencher<'a> {
    config: &'a Criterion,
    measured: Option<(Duration, u64)>,
}

impl Bencher<'_> {
    /// Runs `f` in a warm-up phase and then a timed loop, recording the
    /// mean time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_deadline {
            black_box(f());
        }
        let started = Instant::now();
        let deadline = started + self.config.measurement_time;
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if Instant::now() >= deadline && iters >= self.config.sample_size as u64 {
                break;
            }
        }
        self.measured = Some((started.elapsed(), iters));
    }
}

fn run_one(
    label: &str,
    config: &Criterion,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        config,
        measured: None,
    };
    f(&mut bencher);
    let Some((elapsed, iters)) = bencher.measured else {
        println!("{label:<40} (no measurement: closure never called iter)");
        return;
    };
    let per_iter = elapsed.as_secs_f64() / iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {:>12.0} elem/s", n as f64 / per_iter),
        Throughput::Bytes(n) => {
            format!("  {:>9.1} MiB/s", n as f64 / per_iter / (1024.0 * 1024.0))
        }
    });
    println!(
        "{label:<40} {:>12}  ({iters} iters){}",
        format_time(per_iter),
        rate.unwrap_or_default()
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a bench group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_loop_measures_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter("x"), &2u64, |b, &two| {
            b.iter(|| {
                calls += two;
                black_box(calls)
            })
        });
        group.finish();
        assert!(calls >= 6, "timed loop ran at least sample_size iters");
    }

    #[test]
    fn time_formatting_picks_sane_units() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with("ms"));
        assert!(format_time(2e-6).ends_with("µs"));
        assert!(format_time(2e-9).ends_with("ns"));
    }
}
