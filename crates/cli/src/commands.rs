//! The `sdbp` subcommand implementations.

use crate::args::Args;
use crate::error::CliError;
use sdbp_artifacts::{Digest, Store};
use sdbp_core::{
    BranchAnalysis, CombinedPredictor, ExperimentSpec, Lab, ProfileSource, ShiftPolicy, Simulator,
    Sweep,
};
use sdbp_predictors::{PredictorConfig, PredictorKind};
use sdbp_profiles::{BiasProfile, HintDatabase, SelectionScheme};
use sdbp_trace::{read_binary, read_text, write_binary, write_text, BranchSource, Trace};
use sdbp_util::table::{fixed, grouped, pct, TableWriter};
use sdbp_workloads::{imports, open_source, Benchmark, InputSet, WorkloadFamily};
use std::fs;
use std::io::BufReader;
use std::path::Path;

type CmdResult = Result<(), CliError>;

/// Common options: `--benchmark`, `--input`, `--seed`, `--instructions`.
struct RunOptions {
    benchmark: Benchmark,
    input: InputSet,
    seed: u64,
    instructions: u64,
}

fn run_options(args: &Args) -> Result<RunOptions, CliError> {
    let benchmark: Benchmark = args
        .get_or("benchmark", "gcc")
        .parse()
        .map_err(CliError::usage)?;
    let input = match args.get_or("input", "ref") {
        "train" => InputSet::Train,
        "ref" => InputSet::Ref,
        other => {
            return Err(CliError::Usage(format!(
                "invalid --input '{other}' (train|ref)"
            )))
        }
    };
    let seed = args
        .get_parsed_or("seed", 2000u64)
        .map_err(CliError::Usage)?;
    let default_budget = benchmark.default_instructions(input);
    let instructions = args
        .get_parsed_or("instructions", default_budget)
        .map_err(CliError::Usage)?;
    Ok(RunOptions {
        benchmark,
        input,
        seed,
        instructions,
    })
}

/// Parses `--scheme` through [`SelectionScheme`]'s own parser — the same
/// one `sdbp check` uses, so both tools accept (and reject) identically.
fn scheme_of(args: &Args) -> Result<SelectionScheme, CliError> {
    args.get_or("scheme", "none")
        .parse()
        .map_err(|e| CliError::Usage(format!("invalid --scheme: {e}")))
}

/// Parses `--predictor`/`--size` through [`PredictorConfig::parse`], the
/// shared option-to-config path also used by `sdbp check`'s spec parser.
fn predictor_of(args: &Args) -> Result<PredictorConfig, CliError> {
    PredictorConfig::parse(
        args.get_or("predictor", "gshare"),
        args.get_or("size", "8192"),
    )
    .map_err(CliError::usage)
}

fn load_trace(path: &str) -> Result<Trace, CliError> {
    let file =
        fs::File::open(path).map_err(|e| CliError::Failure(format!("cannot open {path}: {e}")))?;
    let mut reader = BufReader::new(file);
    if path.ends_with(".txt") || path.ends_with(".text") {
        read_text(&mut reader).map_err(|e| CliError::Failure(format!("{path}: {e}")))
    } else {
        read_binary(&mut reader).map_err(|e| CliError::Failure(format!("{path}: {e}")))
    }
}

/// `sdbp gen` — generate a trace file from a synthetic workload.
pub fn gen(args: &Args) -> CmdResult {
    let opts = run_options(args)?;
    let out = args
        .get("out")
        .ok_or("gen requires --out <path>".to_string())?;
    let trace = open_source(opts.benchmark, opts.input, opts.seed)
        .take_instructions(opts.instructions)
        .collect_trace();
    let mut buf = Vec::new();
    if args.has_flag("text") || out.ends_with(".txt") {
        write_text(&mut buf, &trace).map_err(|e| e.to_string())?;
    } else {
        write_binary(&mut buf, &trace).map_err(|e| e.to_string())?;
    }
    fs::write(out, &buf).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "wrote {out}: {} branches, {} instructions ({} bytes)",
        grouped(trace.len() as u64),
        grouped(trace.meta().total_instructions),
        grouped(buf.len() as u64)
    );
    Ok(())
}

/// `sdbp stats` — characterize a trace file or a synthetic workload.
pub fn stats(args: &Args) -> CmdResult {
    let stats = if let Some(path) = args.get("trace") {
        let trace = load_trace(path)?;
        sdbp_trace::TraceStats::from_source(sdbp_trace::SliceSource::from_trace(&trace))
    } else {
        let opts = run_options(args)?;
        sdbp_trace::TraceStats::from_source(
            open_source(opts.benchmark, opts.input, opts.seed).take_instructions(opts.instructions),
        )
    };
    let mut t = TableWriter::with_columns(&["metric", "value"]);
    t.align(1, sdbp_util::table::Align::Right);
    t.row_display(["static branches", &grouped(stats.static_branches() as u64)]);
    t.row_display(["dynamic branches", &grouped(stats.dynamic_branches())]);
    t.row_display(["instructions", &grouped(stats.total_instructions())]);
    t.row_display(["CBRs/KI", &fixed(stats.cbrs_per_ki(), 1)]);
    t.row_display([
        "dyn. biased >95%",
        &pct(stats.dynamic_fraction_biased(0.95)),
    ]);
    t.row_display([
        "stat. biased >95%",
        &pct(stats.static_fraction_biased(0.95)),
    ]);
    println!("{}", t.render());
    Ok(())
}

/// `sdbp profile` — collect a bias profile and write it as text.
pub fn profile(args: &Args) -> CmdResult {
    let opts = run_options(args)?;
    let out = args
        .get("out")
        .ok_or("profile requires --out <path>".to_string())?;
    let profile = BiasProfile::from_source(
        open_source(opts.benchmark, opts.input, opts.seed).take_instructions(opts.instructions),
    );
    // Metadata header: `sdbp check` cross-checks these fields against the
    // spec the profile is later used with (SDBP030/031/032).
    let header = format!(
        "# benchmark {}\n# input {}\n# seed {}\n# instructions {}\n",
        opts.benchmark.name(),
        match opts.input {
            InputSet::Train => "train",
            InputSet::Ref => "ref",
        },
        opts.seed,
        opts.instructions
    );
    fs::write(out, format!("{header}{}", profile.to_text()))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "wrote {out}: {} sites, {} executions",
        grouped(profile.len() as u64),
        grouped(profile.total_executions())
    );
    Ok(())
}

/// `sdbp select` — select static hints from a profile (or from a fresh run)
/// and write the hint database.
pub fn select(args: &Args) -> CmdResult {
    let scheme = scheme_of(args)?;
    let out = args
        .get("out")
        .ok_or("select requires --out <path>".to_string())?;
    let opts = run_options(args)?;
    let source =
        || open_source(opts.benchmark, opts.input, opts.seed).take_instructions(opts.instructions);
    let (bias, accuracy) = match args.get("profile") {
        Some(path) => {
            let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let bias = BiasProfile::from_text(&text)?;
            let accuracy = if scheme.needs_accuracy_profile() {
                let mut predictor = predictor_of(args)?.build();
                Some(sdbp_profiles::AccuracyProfile::collect(
                    source(),
                    predictor.as_mut(),
                ))
            } else {
                None
            };
            (bias, accuracy)
        }
        // No profile file: both profiles come from a fresh run — fused
        // into a single generator traversal through the pass framework.
        None if scheme.needs_accuracy_profile() => {
            let mut predictor = predictor_of(args)?.build();
            let mut bias_pass = sdbp_profiles::BiasPass::new();
            let mut accuracy_pass = sdbp_profiles::AccuracyPass::new(predictor.as_mut());
            sdbp_passes::PassRunner::new().run(source(), &mut [&mut bias_pass, &mut accuracy_pass]);
            (bias_pass.into_profile(), Some(accuracy_pass.into_profile()))
        }
        None => (BiasProfile::from_source(source()), None),
    };
    // Static_Collide ranks interference against the configured predictor's
    // index function; other schemes never consult a ranking.
    let ranking = if scheme.needs_interference_ranking() {
        sdbp_profiles::rank_interference(
            &bias,
            predictor_of(args)?,
            &sdbp_profiles::InterferenceOptions::default(),
        )
    } else {
        None
    };
    let hints = scheme
        .select_with_interference(&bias, accuracy.as_ref(), ranking.as_ref())
        .map_err(|e| e.to_string())?;
    fs::write(out, hints.to_text()).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {out}: {} ({scheme})", hints);
    Ok(())
}

/// `sdbp sim` — simulate a predictor over a workload or trace, optionally
/// with a hint database or an on-the-fly selection scheme.
pub fn sim(args: &Args) -> CmdResult {
    let config = predictor_of(args)?;
    let shift = if args.has_flag("shift") {
        ShiftPolicy::Shift
    } else {
        ShiftPolicy::NoShift
    };

    // Trace-file mode: external traces with an optional hint database.
    if let Some(path) = args.get("trace") {
        let trace = load_trace(path)?;
        let hints = match args.get("hints") {
            Some(hint_path) => {
                let text = fs::read_to_string(hint_path)
                    .map_err(|e| format!("cannot read {hint_path}: {e}"))?;
                HintDatabase::from_text(&text)?
            }
            None => HintDatabase::new(),
        };
        let mut combined = CombinedPredictor::new(config.build_any(), hints, shift);
        let stats =
            Simulator::new().run(sdbp_trace::SliceSource::from_trace(&trace), &mut combined);
        println!("{config} on {path}: {stats}");
        return Ok(());
    }

    // Workload mode: the full two-phase experiment.
    let opts = run_options(args)?;
    let scheme = scheme_of(args)?;
    let mut spec = ExperimentSpec::self_trained(opts.benchmark, config, scheme)
        .with_shift(shift)
        .with_seed(opts.seed)
        .with_measure_input(opts.input);
    spec.measure_instructions = Some(opts.instructions);
    spec.profile_instructions = Some(opts.instructions);
    match args.get_or("training", "self") {
        "self" => {}
        "cross" => spec = spec.with_profile(ProfileSource::CrossTrained),
        "merged" => {
            spec = spec.with_profile(ProfileSource::MergedCrossTrained {
                max_bias_change: 0.05,
            })
        }
        other => {
            return Err(CliError::Usage(format!(
                "invalid --training '{other}' (self|cross|merged)"
            )))
        }
    }
    let report = Lab::new().run(&spec)?;
    println!("{report}");
    Ok(())
}

/// Reads the `--threads` override (0 or absent = automatic resolution:
/// `SDBP_THREADS` env, then all available cores).
fn threads_of(args: &Args) -> Result<usize, CliError> {
    args.get_parsed_or("threads", 0usize)
        .map_err(CliError::Usage)
}

/// `sdbp sweep` — size sweep of one predictor/scheme on one benchmark,
/// run in parallel through the sweep engine.
pub fn sweep(args: &Args) -> CmdResult {
    let kind: PredictorKind = args
        .get_or("predictor", "gshare")
        .parse()
        .map_err(CliError::usage)?;
    let scheme = scheme_of(args)?;
    let opts = run_options(args)?;
    let threads = threads_of(args)?;
    let sizes = [1usize, 2, 4, 8, 16, 32, 64];
    let mut specs = Vec::new();
    for size_kb in sizes {
        let config = PredictorConfig::new(kind, size_kb * 1024).map_err(|e| e.to_string())?;
        let mut spec = ExperimentSpec::self_trained(opts.benchmark, config, scheme)
            .with_seed(opts.seed)
            .with_measure_input(opts.input);
        spec.measure_instructions = Some(opts.instructions);
        spec.profile_instructions = Some(opts.instructions);
        specs.push(spec);
    }
    let result = Sweep::new(specs)
        .with_threads(threads)
        .with_verbose(true)
        .with_lockstep(!args.has_flag("no-lockstep"))
        .run();
    let summary = result.summary();
    let mut t = TableWriter::with_columns(&["size", "MISPs/KI", "accuracy", "collisions", "hints"]);
    t.numeric();
    for (size_kb, report) in sizes.iter().zip(result.into_reports()?) {
        t.row(vec![
            format!("{size_kb}KB"),
            fixed(report.stats.misp_per_ki(), 3),
            pct(report.stats.accuracy()),
            grouped(report.stats.collisions.total),
            grouped(report.hints as u64),
        ]);
    }
    eprintln!("  {summary}");
    println!(
        "{kind} on {} ({}, {scheme}):\n\n{}",
        opts.benchmark,
        opts.input,
        t.render()
    );
    Ok(())
}

/// Resolves the benchmarks a `grid` run covers: an imported `--trace`
/// file, every member of a `--family`, or the single `--benchmark`.
fn grid_benchmarks(args: &Args) -> Result<Vec<Benchmark>, CliError> {
    if let Some(path) = args.get("trace") {
        let benchmark = imports::register(Path::new(path)).map_err(CliError::Failure)?;
        return Ok(vec![benchmark]);
    }
    if let Some(name) = args.get("family") {
        let family: WorkloadFamily = name.parse().map_err(CliError::Usage)?;
        let members = Benchmark::family_members(family);
        if members.is_empty() {
            return Err(CliError::Failure(format!(
                "family '{family}' has no benchmarks; ingest a trace first (`sdbp ingest`)"
            )));
        }
        return Ok(members);
    }
    Ok(vec![run_options(args)?.benchmark])
}

/// `sdbp grid` — the Figure 7–12 experiment: every paper predictor at
/// `--size` under the three static schemes, run in parallel with shared
/// profile/trace artifacts. Covers one benchmark by default; `--family`
/// sweeps every benchmark of a workload family in one sweep (the stderr
/// summary then reports MISPs/KI per family), and `--trace` admits an
/// external trace file and grids over it.
pub fn grid(args: &Args) -> CmdResult {
    let benchmarks = grid_benchmarks(args)?;
    let input = match args.get_or("input", "ref") {
        "train" => InputSet::Train,
        "ref" => InputSet::Ref,
        other => {
            return Err(CliError::Usage(format!(
                "invalid --input '{other}' (train|ref)"
            )))
        }
    };
    let seed = args
        .get_parsed_or("seed", 2000u64)
        .map_err(CliError::Usage)?;
    let explicit_instructions = match args.get("instructions") {
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|e| CliError::Usage(format!("invalid --instructions '{v}': {e}")))?,
        ),
        None => None,
    };
    let size = args
        .get_parsed_or("size", 8192usize)
        .map_err(CliError::Usage)?;
    let threads = threads_of(args)?;
    let schemes: Vec<SelectionScheme> = args
        .get_or("schemes", "none,static_95,static_acc")
        .split(',')
        .map(|name| {
            name.trim()
                .parse()
                .map_err(|e| CliError::Usage(format!("invalid --schemes entry '{name}': {e}")))
        })
        .collect::<Result<_, _>>()?;
    if schemes.is_empty() {
        return Err(CliError::Usage(
            "--schemes must name at least one scheme".into(),
        ));
    }
    // Cells whose scheme needs the interference ranking on a predictor that
    // is opaque to it would fail at selection time; skip them up front and
    // render n/a — the same policy as `bench-frontier` and SDBP042.
    let mut specs = Vec::new();
    let mut layout: Vec<Vec<Vec<Option<usize>>>> = Vec::new();
    for &benchmark in &benchmarks {
        let instructions =
            explicit_instructions.unwrap_or_else(|| benchmark.default_instructions(input));
        let mut rows = Vec::new();
        for kind in PredictorKind::PAPER {
            let config = PredictorConfig::new(kind, size).map_err(|e| e.to_string())?;
            let mut row = Vec::new();
            for &scheme in &schemes {
                if scheme.needs_interference_ranking() && !sdbp_profiles::exposes_indices(config) {
                    row.push(None);
                    continue;
                }
                let mut spec = ExperimentSpec::self_trained(benchmark, config, scheme)
                    .with_seed(seed)
                    .with_measure_input(input);
                spec.measure_instructions = Some(instructions);
                spec.profile_instructions = Some(instructions);
                specs.push(spec);
                row.push(Some(specs.len() - 1));
            }
            rows.push(row);
        }
        layout.push(rows);
    }
    let mut sweep = Sweep::new(specs)
        .with_threads(threads)
        .with_verbose(true)
        .with_fusion(!args.has_flag("no-fuse"))
        .with_lockstep(!args.has_flag("no-lockstep"));
    if let Some(dir) = args.get("store") {
        sweep = sweep
            .with_store(dir)
            .with_resume(args.has_flag("resume"))
            .with_max_cells(
                args.get_parsed_or("max-cells", 0usize)
                    .map_err(CliError::Usage)?,
            );
    } else if args.has_flag("resume") {
        return Err(CliError::Usage(
            "--resume requires --store <dir> (nothing to resume from)".into(),
        ));
    }
    let result = sweep.run();
    let summary = result.summary();
    let reports = result.into_reports()?;
    // Columns: one per scheme, then a delta column per non-baseline scheme
    // (the first scheme listed is the baseline).
    let mut columns: Vec<String> = vec!["predictor".to_string()];
    columns.extend(schemes.iter().map(|s| s.label().to_string()));
    columns.extend(
        schemes[1..]
            .iter()
            .map(|s| format!("Δ{}", s.label().trim_start_matches("static_"))),
    );
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    eprintln!("  {summary}");
    for (benchmark, rows) in benchmarks.iter().zip(&layout) {
        let mut t = TableWriter::with_columns(&column_refs);
        t.numeric();
        for (kind, row_layout) in PredictorKind::PAPER.iter().zip(rows) {
            let cells: Vec<Option<&sdbp_core::Report>> =
                row_layout.iter().map(|i| i.map(|i| &reports[i])).collect();
            let mut row = vec![kind.name().to_string()];
            for cell in &cells {
                row.push(match cell {
                    Some(r) => fixed(r.stats.misp_per_ki(), 3),
                    None => "n/a".to_string(),
                });
            }
            for cell in &cells[1..] {
                row.push(match (cells[0], cell) {
                    (Some(base), Some(r)) => {
                        format!("{:+.1}%", r.improvement_over(base) * 100.0)
                    }
                    _ => "n/a".to_string(),
                });
            }
            t.row(row);
        }
        println!(
            "MISPs/KI on {} ({}, {} bytes):\n\n{}",
            benchmark.name(),
            input,
            size,
            t.render()
        );
    }
    Ok(())
}

/// `sdbp ingest` — lint an external branch trace with the SDBP070–075
/// admission diagnostics and, when it passes, register it as an imported
/// benchmark for this process (grids name it like any synthetic one).
pub fn ingest(args: &Args) -> CmdResult {
    let path = args
        .get("trace")
        .ok_or("ingest requires --trace <path>".to_string())?;
    let deny_warnings = args.has_flag("deny-warnings");
    let p = Path::new(path);
    // One scan serves both the lints and the admission registration.
    let scanned = sdbp_trace::scan_path(p);
    let diags = match &scanned {
        Ok(scan) => sdbp_check::lint_trace_scan(scan, path),
        // Open failed: re-derive the failure as SDBP070/SDBP071.
        Err(_) => sdbp_check::lint_trace_path(p),
    };
    match args.get_or("format", "text") {
        "json" => println!("{}", diags.to_json()),
        "text" => print!("{}", diags.render_text()),
        other => {
            return Err(CliError::Usage(format!(
                "invalid --format '{other}' (text|json)"
            )))
        }
    }
    if !diags.passes(deny_warnings) {
        return Err(CliError::Failure(format!(
            "ingest rejected {path}: {}",
            diags.summary()
        )));
    }
    let scan = scanned.expect("open failures carry SDBP070/071 errors and were rejected above");
    let benchmark = imports::register_scanned(p, &scan).map_err(CliError::Failure)?;
    println!(
        "admitted {path} as benchmark '{}' (family {}, {} events, {} instructions)",
        benchmark.name(),
        benchmark.family(),
        grouped(scan.events),
        grouped(scan.total_instructions)
    );
    Ok(())
}

/// `sdbp hotspots` — per-branch misprediction breakdown: the top
/// contributors a performance engineer (or a selection scheme) would target.
pub fn hotspots(args: &Args) -> CmdResult {
    let config = predictor_of(args)?;
    let (kind, size) = (config.kind(), config.size_bytes());
    let top = args
        .get_parsed_or("top", 15usize)
        .map_err(CliError::Usage)?;
    let opts = run_options(args)?;
    let mut predictor = CombinedPredictor::pure_dynamic(config.build_any());
    let analysis = BranchAnalysis::run(
        open_source(opts.benchmark, opts.input, opts.seed).take_instructions(opts.instructions),
        &mut predictor,
    );
    let mut t =
        TableWriter::with_columns(&["pc", "executed", "mispredicted", "rate", "collisions"]);
    t.numeric();
    for (pc, r) in analysis.top_mispredictors(top) {
        t.row(vec![
            format!("{pc}"),
            grouped(r.executed),
            grouped(r.mispredicted),
            pct(r.misprediction_rate()),
            grouped(r.collisions),
        ]);
    }
    println!(
        "{kind} {size}B on {}.{}: {} — top {top} branches cover {:.0}% of mispredictions
",
        opts.benchmark,
        opts.input,
        analysis.stats(),
        analysis.misprediction_concentration(top) * 100.0
    );
    println!("{}", t.render());
    Ok(())
}

/// Synthesizes spec-file text from the inline `check` options, so inline
/// invocations go through the same parser — and get the same coded
/// diagnostics — as `--spec` files.
fn inline_spec_text(args: &Args) -> String {
    let mut text = String::new();
    for key in sdbp_check::SPEC_KEYS {
        if let Some(value) = args.get(key) {
            text.push_str(&format!("{key} {value}\n"));
        }
    }
    if args.has_flag("shift") {
        text.push_str("shift shift\n");
    }
    text
}

/// `sdbp check` — static diagnostics over a spec, a hint database, and a
/// profile, without running any simulation.
pub fn check(args: &Args) -> CmdResult {
    let deny_warnings = args.has_flag("deny-warnings");
    let mut diags = sdbp_check::Diagnostics::new();

    // --suite: lint every spec the experiment harness binaries would run.
    if args.has_flag("suite") {
        for spec in sdbp_bench::experiments::suite_specs() {
            diags.merge(sdbp_check::lint_spec(&spec, "<suite>"));
        }
    }

    // The spec under scrutiny: a `--spec` file, or the inline options.
    let (spec_text, origin) = match args.get("spec") {
        Some(path) => (
            fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?,
            path.to_string(),
        ),
        None => (inline_spec_text(args), "<args>".to_string()),
    };
    let (parsed, parse_diags) = sdbp_check::parse_spec_text(&spec_text, &origin);
    diags.merge(parse_diags);
    if let Some(spec) = &parsed.spec {
        diags.merge(sdbp_check::lint_spec_with_history(
            spec,
            parsed.declared_history,
            &origin,
        ));
    }

    // --profile: metadata cross-checks, and the data for --aliasing.
    let mut profile = None;
    if let Some(path) = args.get("profile") {
        let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let (bias, metadata, profile_diags) = sdbp_check::parse_profile_text(&text, path);
        diags.merge(profile_diags);
        if let Some(spec) = &parsed.spec {
            diags.merge(sdbp_check::lint_profile_against_spec(&metadata, spec, path));
        }
        profile = Some(bias);
    }

    // --hints: duplicate/conflict lints, plus profile cross-checks.
    if let Some(path) = args.get("hints") {
        let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let (hints, hint_diags) = sdbp_check::parse_hints_text(&text, path);
        diags.merge(hint_diags);
        if let Some(bias) = &profile {
            diags.merge(sdbp_check::lint_hints_against_profile(
                &hints,
                bias,
                path,
                sdbp_check::HintLintOptions::default(),
            ));
        }
    }

    // --manifest: lint a grid run manifest — parse damage, schema drift,
    // duplicate or failed cells, torn tails (SDBP050–SDBP054).
    if let Some(path) = args.get("manifest") {
        let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        diags.merge(sdbp_check::lint_manifest_text(&text, path));
    }

    // --aliasing: forecast destructive interference from the profile and
    // the spec's index function. Falls back to a bounded fresh profiling
    // run when no --profile file was given.
    if args.has_flag("aliasing") {
        if let Some(spec) = &parsed.spec {
            let fresh;
            let bias = match &profile {
                Some(b) => b,
                None => {
                    let budget = args
                        .get_parsed_or("instructions", 500_000u64)
                        .map_err(CliError::Usage)?;
                    fresh = BiasProfile::from_source(
                        open_source(spec.benchmark, InputSet::Train, spec.seed)
                            .take_instructions(budget),
                    );
                    &fresh
                }
            };
            let options = sdbp_check::AliasingOptions {
                top: args
                    .get_parsed_or("top", 10usize)
                    .map_err(CliError::Usage)?,
                ..Default::default()
            };
            let (_, aliasing_diags) =
                sdbp_check::lint_aliasing(bias, spec.predictor, &options, &origin);
            diags.merge(aliasing_diags);
        }
    }

    // --index-analysis: prove the index function's collision structure with
    // exact GF(2) linear algebra (SDBP060–SDBP064). Like --aliasing, a
    // bounded fresh profiling run stands in when no --profile was given —
    // the profile drives the SDBP063 proven-pair search.
    if args.has_flag("index-analysis") {
        if let Some(spec) = &parsed.spec {
            let fresh;
            let bias = match &profile {
                Some(b) => b,
                None => {
                    let budget = args
                        .get_parsed_or("instructions", 500_000u64)
                        .map_err(CliError::Usage)?;
                    fresh = BiasProfile::from_source(
                        open_source(spec.benchmark, InputSet::Train, spec.seed)
                            .take_instructions(budget),
                    );
                    &fresh
                }
            };
            let options = sdbp_check::IndexAnalysisOptions {
                top_pairs: args
                    .get_parsed_or("top", 10usize)
                    .map_err(CliError::Usage)?,
            };
            let (_, index_diags) =
                sdbp_check::lint_index_analysis(Some(bias), spec.predictor, &options, &origin);
            diags.merge(index_diags);
        }
    }

    match args.get_or("format", "text") {
        "json" => println!("{}", diags.to_json()),
        "text" => {
            print!("{}", diags.render_text());
            println!("check: {}", diags.summary());
        }
        other => {
            return Err(CliError::Usage(format!(
                "invalid --format '{other}' (text|json)"
            )))
        }
    }
    if diags.passes(deny_warnings) {
        Ok(())
    } else {
        Err(CliError::Failure(format!(
            "check failed: {}",
            diags.summary()
        )))
    }
}

/// `sdbp list` — enumerate benchmarks and predictors.
pub fn bench_kernel(args: &Args) -> CmdResult {
    let quick = args.has_flag("quick");
    let out = args.get_or("out", "BENCH_simkernel.json");
    eprintln!(
        "benchmarking simulation kernel ({} mode)...",
        if quick { "quick" } else { "full" }
    );
    let report = sdbp_bench::kernel::run(quick, |m| {
        eprintln!(
            "  {:<20} {:>7}B  {:>9.2} Mbranches/s",
            m.label,
            m.size_bytes,
            m.branches_per_sec() / 1e6
        );
    });
    print!("{}", report.summary());
    println!(
        "cache: {} trace hits / {} misses",
        report.cache_hits, report.cache_misses
    );
    fs::write(out, report.to_json()).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

/// `sdbp bench-passes` — time a profile-heavy grid with pass fusion on and
/// off, and write the machine-readable `BENCH_passes.json` report.
pub fn bench_passes(args: &Args) -> CmdResult {
    let quick = args.has_flag("quick");
    let out = args.get_or("out", "BENCH_passes.json");
    eprintln!(
        "benchmarking pass fusion ({} mode)...",
        if quick { "quick" } else { "full" }
    );
    let report = sdbp_bench::passes::run(quick, |m| {
        eprintln!(
            "  {:<8} {:>8.3} s  {:>3} traversals",
            m.label, m.seconds, m.traversals
        );
    });
    print!("{}", report.summary());
    fs::write(out, report.to_json()).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

/// `sdbp bench-frontier` — run the predictor-frontier ablation (tabular
/// vs. perceptron/TAGE-lite predictors under every selection scheme,
/// `Static_Collide` included) and write the machine-readable
/// `BENCH_frontier.json` report.
pub fn bench_frontier(args: &Args) -> CmdResult {
    let quick = args.has_flag("quick");
    let out = args.get_or("out", "BENCH_frontier.json");
    eprintln!(
        "benchmarking the predictor frontier ({} mode)...",
        if quick { "quick" } else { "full" }
    );
    let report = sdbp_bench::frontier::run(quick, |cell| {
        eprintln!(
            "  {:<9} {:<10} {:<15} {:>8.3} MISPs/KI  {:>6} hints",
            cell.benchmark.name(),
            cell.predictor.name(),
            cell.scheme,
            cell.misp_per_ki,
            cell.hints
        );
    });
    print!("{}", report.summary());
    fs::write(out, report.to_json()).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

/// `sdbp bench-families` — run the per-family grid (every family's
/// benchmarks × {gshare, agree, tage-lite} × {dynamic, static_95,
/// static_acc}), verify imported-trace identity, and write the
/// machine-readable `BENCH_families.json` report.
pub fn bench_families(args: &Args) -> CmdResult {
    let quick = args.has_flag("quick");
    let out = args.get_or("out", "BENCH_families.json");
    eprintln!(
        "benchmarking workload families ({} mode)...",
        if quick { "quick" } else { "full" }
    );
    let report = sdbp_bench::families::run(quick, |f| {
        eprintln!(
            "  {:<7} {} benchmarks, {} cells, {} branches/scheme",
            f.family.name(),
            f.benchmarks,
            f.cells,
            grouped(f.branches)
        );
    });
    print!("{}", report.summary());
    fs::write(out, report.to_json()).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {out}");
    if report.identity.passed() {
        Ok(())
    } else {
        Err(CliError::Failure(
            "imported-trace identity check failed: replayed cells must be \
             bit-identical to generator-backed cells"
                .into(),
        ))
    }
}

/// Opens the `--store` directory an `artifact` action operates on.
fn store_of(args: &Args) -> Result<Store, CliError> {
    let dir = args
        .get("store")
        .ok_or_else(|| CliError::Usage("artifact commands require --store <dir>".into()))?;
    Ok(Store::open(dir)?)
}

/// `sdbp artifact <action>` — inspect and maintain a durable artifact
/// store: `ls` (every object with schema and size), `inspect --digest HEX`
/// (one object in detail), `gc` (prune corrupt objects, dangling links,
/// and stale temp files).
pub fn artifact(action: &str, args: &Args) -> CmdResult {
    match action {
        "ls" => {
            let store = store_of(args)?;
            let entries = store.list()?;
            let mut t = TableWriter::with_columns(&["digest", "schema", "version", "bytes"]);
            t.align(3, sdbp_util::table::Align::Right);
            let mut damaged = 0usize;
            for entry in &entries {
                let (schema, version) = match entry.schema() {
                    Ok((schema, version)) => (schema, version.to_string()),
                    Err(_) => {
                        damaged += 1;
                        ("<corrupt>".to_string(), "-".to_string())
                    }
                };
                t.row(vec![
                    entry.digest.to_string(),
                    schema,
                    version,
                    grouped(entry.size),
                ]);
            }
            println!("{}", t.render());
            println!(
                "{} objects in {}{}",
                entries.len(),
                store.root().display(),
                if damaged > 0 {
                    format!(" ({damaged} corrupt; run `sdbp artifact gc`)")
                } else {
                    String::new()
                }
            );
            Ok(())
        }
        "inspect" => {
            let store = store_of(args)?;
            let digest: Digest = args
                .get("digest")
                .ok_or_else(|| CliError::Usage("artifact inspect requires --digest <hex>".into()))?
                .parse()
                .map_err(CliError::usage)?;
            let bytes = store
                .get_bytes(digest)?
                .ok_or_else(|| CliError::Failure(format!("no object {digest} in the store")))?;
            let (schema, version) = sdbp_artifacts::peek_schema(&bytes).map_err(|e| {
                CliError::Store(format!(
                    "corrupt artifact at {}: {e}",
                    store.object_path(digest).display()
                ))
            })?;
            println!("digest:  {digest}");
            println!("path:    {}", store.object_path(digest).display());
            println!("schema:  {schema} v{version}");
            println!("size:    {} bytes", grouped(bytes.len() as u64));
            Ok(())
        }
        "gc" => {
            let store = store_of(args)?;
            let (removed, kept) = store.gc()?;
            println!(
                "gc {}: removed {removed}, kept {kept}",
                store.root().display()
            );
            Ok(())
        }
        "" => Err(CliError::Usage(
            "artifact requires an action: ls, inspect, or gc".into(),
        )),
        other => Err(CliError::Usage(format!(
            "unknown artifact action '{other}' (ls|inspect|gc)"
        ))),
    }
}

pub fn list() -> CmdResult {
    println!("benchmarks:");
    for b in Benchmark::SYNTHETIC {
        let spec = b.spec();
        println!(
            "  {:<10} {:<7} {} static branches, ~{:.0} CBRs/KI",
            b.name(),
            b.family(),
            spec.static_sites,
            spec.cbrs_per_ki_ref
        );
    }
    println!("\npredictors:");
    for kind in PredictorKind::ALL {
        println!(
            "  {:<9} {}",
            kind.name(),
            if kind.uses_global_history() {
                "global history"
            } else {
                "per-address"
            }
        );
    }
    println!("\nschemes: none, static_95, static_<pct>, static_acc, static_col, static_collide");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn run_options_defaults() {
        let o = run_options(&args(&["sim"])).unwrap();
        assert_eq!(o.benchmark, Benchmark::Gcc);
        assert_eq!(o.input, InputSet::Ref);
        assert_eq!(o.seed, 2000);
        assert!(o.instructions > 0);
    }

    #[test]
    fn run_options_rejects_bad_input() {
        assert!(run_options(&args(&["sim", "--input", "weird"])).is_err());
        assert!(run_options(&args(&["sim", "--benchmark", "nope"])).is_err());
    }

    #[test]
    fn scheme_parsing() {
        assert_eq!(scheme_of(&args(&["x"])).unwrap(), SelectionScheme::None);
        assert_eq!(
            scheme_of(&args(&["x", "--scheme", "static_95"])).unwrap(),
            SelectionScheme::static_95()
        );
        assert_eq!(
            scheme_of(&args(&["x", "--scheme", "static_90"])).unwrap(),
            SelectionScheme::Bias { cutoff: 0.90 }
        );
        assert_eq!(
            scheme_of(&args(&["x", "--scheme", "static_acc"])).unwrap(),
            SelectionScheme::static_acc()
        );
        assert!(scheme_of(&args(&["x", "--scheme", "bogus"])).is_err());
    }

    #[test]
    fn hotspots_runs_a_tiny_workload() {
        let a = args(&[
            "hotspots",
            "--benchmark",
            "compress",
            "--instructions",
            "50000",
            "--size",
            "1024",
            "--top",
            "5",
        ]);
        assert!(hotspots(&a).is_ok());
    }

    #[test]
    fn sim_runs_a_tiny_workload() {
        let a = args(&[
            "sim",
            "--benchmark",
            "compress",
            "--instructions",
            "50000",
            "--size",
            "1024",
        ]);
        assert!(sim(&a).is_ok());
    }

    #[test]
    fn check_accepts_clean_inline_options() {
        let a = args(&[
            "check",
            "--benchmark",
            "gcc",
            "--predictor",
            "gshare",
            "--size",
            "8192",
        ]);
        assert!(check(&a).is_ok());
    }

    #[test]
    fn check_rejects_a_broken_spec_file() {
        let dir = std::env::temp_dir().join("sdbp-cli-check-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.spec");
        fs::write(&path, "predictor gshrae\nsize 3000\n").unwrap();
        let err = check(&args(&["check", "--spec", path.to_str().unwrap()])).unwrap_err();
        assert!(
            err.to_string().contains("error"),
            "unexpected message: {err}"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn artifact_actions_require_a_store_and_an_action() {
        let missing_store = artifact("ls", &args(&["artifact"])).unwrap_err();
        assert_eq!(missing_store.exit_code(), 2);
        let dir = std::env::temp_dir().join("sdbp-cli-artifact-usage-test");
        let store_arg = dir.to_str().unwrap().to_string();
        let missing_action = artifact("", &args(&["artifact", "--store", &store_arg])).unwrap_err();
        assert_eq!(missing_action.exit_code(), 2);
        let unknown = artifact("prune", &args(&["artifact", "--store", &store_arg])).unwrap_err();
        assert!(unknown.to_string().contains("prune"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn artifact_ls_inspect_gc_roundtrip() {
        let dir = std::env::temp_dir().join("sdbp-cli-artifact-test");
        fs::remove_dir_all(&dir).ok();
        let store = Store::open(&dir).unwrap();
        let digest = store.put_bytes_addressed(b"loose bytes").unwrap();
        let store_arg = dir.to_str().unwrap().to_string();
        artifact("ls", &args(&["artifact", "--store", &store_arg])).unwrap();
        let hex = digest.to_string();
        artifact(
            "inspect",
            &args(&["artifact", "--store", &store_arg, "--digest", &hex]),
        )
        .unwrap_err(); // loose bytes carry no envelope: corrupt, exit 3
        artifact("gc", &args(&["artifact", "--store", &store_arg])).unwrap();
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn grid_resume_without_store_is_a_usage_error() {
        let err = grid(&args(&["grid", "--resume"])).unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn check_deny_warnings_promotes_warnings_to_failure() {
        // A bimodal predictor with a shift policy draws SDBP011 (warning):
        // fine normally, fatal under --deny-warnings.
        let warn = &["check", "--predictor", "bimodal", "--shift"];
        assert!(check(&args(warn)).is_ok());
        let mut strict: Vec<&str> = warn.to_vec();
        strict.push("--deny-warnings");
        assert!(check(&args(&strict)).is_err());
    }

    #[test]
    fn check_profile_roundtrip_is_clean() {
        // A profile written by `sdbp profile` must check cleanly against a
        // spec built from the same options (metadata header included).
        let dir = std::env::temp_dir().join("sdbp-cli-check-profile-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.prof");
        let prof = path.to_str().unwrap();
        let common = [
            "--benchmark",
            "compress",
            "--instructions",
            "50000",
            "--seed",
            "2000",
        ];
        let mut gen_args = vec!["profile", "--out", prof];
        gen_args.extend_from_slice(&common);
        profile(&args(&gen_args)).unwrap();

        let mut check_args = vec!["check", "--profile", prof, "--deny-warnings"];
        check_args.extend_from_slice(&common);
        // profile_instructions must match the profile header for SDBP032.
        check_args.extend_from_slice(&["--profile_instructions", "50000"]);
        assert!(check(&args(&check_args)).is_ok());

        // A mismatched benchmark is an error (SDBP030).
        let mut bad = vec!["check", "--profile", prof, "--benchmark", "gcc"];
        bad.extend_from_slice(&["--seed", "2000"]);
        assert!(check(&args(&bad)).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn check_aliasing_emits_hotspot_notes_but_passes() {
        let a = args(&[
            "check",
            "--benchmark",
            "compress",
            "--predictor",
            "gshare",
            "--size",
            "1024",
            "--instructions",
            "50000",
            "--aliasing",
            "--deny-warnings",
        ]);
        assert!(check(&a).is_ok());
    }

    #[test]
    fn check_suite_lints_the_harness_grids() {
        assert!(check(&args(&["check", "--suite", "--deny-warnings"])).is_ok());
    }

    #[test]
    fn grid_benchmarks_expands_families() {
        let server = grid_benchmarks(&args(&["grid", "--family", "server"])).unwrap();
        assert_eq!(server.len(), 2);
        assert!(server.iter().all(|b| b.family() == WorkloadFamily::Server));
        let spec95 = grid_benchmarks(&args(&["grid", "--family", "spec95"])).unwrap();
        assert_eq!(spec95.len(), 6);
        let h2p = grid_benchmarks(&args(&["grid", "--family", "h2p"])).unwrap();
        assert_eq!(h2p.len(), 2);
        let err = grid_benchmarks(&args(&["grid", "--family", "desktop"])).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        let default = grid_benchmarks(&args(&["grid"])).unwrap();
        assert_eq!(default, vec![Benchmark::Gcc]);
    }

    #[test]
    fn run_options_accepts_family_benchmarks() {
        let o = run_options(&args(&["sim", "--benchmark", "h2p_churn"])).unwrap();
        assert_eq!(o.benchmark.family(), WorkloadFamily::H2p);
        assert!(o.instructions > 0);
        let o = run_options(&args(&["stats", "--benchmark", "server_web"])).unwrap();
        assert_eq!(o.benchmark.family(), WorkloadFamily::Server);
    }

    #[test]
    fn ingest_admits_generated_traces_and_rejects_garbage() {
        let dir = std::env::temp_dir().join("sdbp-cli-ingest-test");
        fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("compress.sdbt");
        let trace_str = trace_path.to_str().unwrap();
        gen(&args(&[
            "gen",
            "--benchmark",
            "compress",
            "--instructions",
            "50000",
            "--out",
            trace_str,
        ]))
        .unwrap();
        ingest(&args(&["ingest", "--trace", trace_str])).unwrap();

        let missing = ingest(&args(&["ingest", "--trace", "/nonexistent/x.sdbt"])).unwrap_err();
        assert_eq!(missing.exit_code(), 1);
        let garbage = dir.join("garbage.bin");
        fs::write(&garbage, [0u8, 200, 1, 255, 7, 7, 7, 7]).unwrap();
        let unknown = ingest(&args(&["ingest", "--trace", garbage.to_str().unwrap()]));
        assert!(unknown.is_err());
        assert!(ingest(&args(&["ingest"])).is_err(), "requires --trace");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn grid_runs_an_imported_trace() {
        let dir = std::env::temp_dir().join("sdbp-cli-grid-trace-test");
        fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("ijpeg.sdbt");
        let trace_str = trace_path.to_str().unwrap();
        gen(&args(&[
            "gen",
            "--benchmark",
            "ijpeg",
            "--instructions",
            "60000",
            "--out",
            trace_str,
        ]))
        .unwrap();
        grid(&args(&[
            "grid",
            "--trace",
            trace_str,
            "--size",
            "1024",
            "--instructions",
            "60000",
            "--schemes",
            "none,static_95",
            "--threads",
            "2",
        ]))
        .unwrap();
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gen_stats_sim_roundtrip_via_file() {
        let dir = std::env::temp_dir().join("sdbp-cli-test");
        fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t.sdbt");
        let trace_str = trace_path.to_str().unwrap();
        gen(&args(&[
            "gen",
            "--benchmark",
            "compress",
            "--instructions",
            "50000",
            "--out",
            trace_str,
        ]))
        .unwrap();
        stats(&args(&["stats", "--trace", trace_str])).unwrap();
        sim(&args(&["sim", "--trace", trace_str, "--size", "1024"])).unwrap();
        fs::remove_dir_all(&dir).ok();
    }
}
