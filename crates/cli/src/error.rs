//! CLI failure classification: what went wrong decides the exit code.

use sdbp_core::ExperimentError;
use std::fmt;

/// A failed `sdbp` command, classified for the process exit code.
///
/// The shell contract: `2` means the *invocation* was wrong (fix the
/// command line), `3` means the on-disk artifact store is damaged (fix or
/// `sdbp artifact gc` the store), `1` means the command itself failed
/// (simulation error, failed check, unwritable output).
#[derive(Debug)]
pub enum CliError {
    /// The user asked for something unparseable: unknown command, bad
    /// option value, missing required option. Exit code 2.
    Usage(String),
    /// The durable artifact store (or a manifest in it) is corrupt.
    /// Exit code 3.
    Store(String),
    /// Everything else: I/O trouble, simulation failures, diagnostics
    /// that did not pass. Exit code 1.
    Failure(String),
}

impl CliError {
    /// Wraps a displayable error as a usage (exit 2) failure.
    pub fn usage(e: impl fmt::Display) -> Self {
        CliError::Usage(e.to_string())
    }

    /// The process exit code this failure maps to.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Store(_) => 3,
            CliError::Failure(_) => 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) | CliError::Store(msg) | CliError::Failure(msg) => {
                f.write_str(msg)
            }
        }
    }
}

impl std::error::Error for CliError {}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Failure(msg)
    }
}

impl From<ExperimentError> for CliError {
    fn from(e: ExperimentError) -> Self {
        match &e {
            ExperimentError::StoreCorrupt { .. } => CliError::Store(e.to_string()),
            _ => CliError::Failure(e.to_string()),
        }
    }
}

impl From<sdbp_artifacts::StoreError> for CliError {
    fn from(e: sdbp_artifacts::StoreError) -> Self {
        match &e {
            sdbp_artifacts::StoreError::Corrupt { .. } => CliError::Store(e.to_string()),
            _ => CliError::Failure(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_follow_the_shell_contract() {
        assert_eq!(CliError::Usage("x".into()).exit_code(), 2);
        assert_eq!(CliError::Store("x".into()).exit_code(), 3);
        assert_eq!(CliError::Failure("x".into()).exit_code(), 1);
    }

    #[test]
    fn experiment_errors_classify_by_variant() {
        let corrupt = ExperimentError::StoreCorrupt {
            path: "objects/ab/cd".into(),
            source: sdbp_artifacts::CodecError::BadMagic,
        };
        assert_eq!(CliError::from(corrupt).exit_code(), 3);
        let rejected = ExperimentError::Rejected {
            reason: "nope".into(),
        };
        assert_eq!(CliError::from(rejected).exit_code(), 1);
    }
}
