//! `sdbp` — command-line driver for the static+dynamic branch prediction
//! simulator (Patil & Emer, HPCA 2000 reproduction).
//!
//! Run `sdbp help` for the full usage text; typical sessions:
//!
//! ```text
//! sdbp sim --benchmark gcc --predictor gshare --size 16384 --scheme static_acc
//! sdbp sweep --benchmark m88ksim --predictor 2bcgskew --scheme static_95
//! sdbp gen --benchmark compress --out compress.sdbt --instructions 1000000
//! sdbp sim --trace compress.sdbt --predictor bimodal --size 2048
//! ```

#![forbid(unsafe_code)]

mod args;
mod commands;
mod error;

use args::Args;
use error::CliError;

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    // `sdbp artifact <action>` carries a bare action word the option parser
    // would reject as a stray positional; peel it off before parsing.
    let mut artifact_action = String::new();
    if argv.first().map(String::as_str) == Some("artifact")
        && argv.get(1).is_some_and(|t| !t.starts_with('-'))
    {
        artifact_action = argv.remove(1);
    }
    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\nrun `sdbp help` for usage");
            std::process::exit(2);
        }
    };
    let result = match args.command() {
        "list" => commands::list(),
        "gen" => commands::gen(&args),
        "ingest" => commands::ingest(&args),
        "stats" => commands::stats(&args),
        "profile" => commands::profile(&args),
        "select" => commands::select(&args),
        "sim" => commands::sim(&args),
        "sweep" => commands::sweep(&args),
        "grid" => commands::grid(&args),
        "hotspots" => commands::hotspots(&args),
        "check" => commands::check(&args),
        "artifact" => commands::artifact(&artifact_action, &args),
        "bench-kernel" => commands::bench_kernel(&args),
        "bench-passes" => commands::bench_passes(&args),
        "bench-frontier" => commands::bench_frontier(&args),
        "bench-families" => commands::bench_families(&args),
        "" | "help" | "-h" | "--help" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command '{other}'; run `sdbp help`"
        ))),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code());
    }
}

const USAGE: &str = "\
sdbp - static+dynamic branch prediction simulator (Patil & Emer, HPCA 2000)

usage: sdbp <command> [--option value] [--flag]

commands:
  list                         benchmarks, predictors, schemes
  gen      --out t.sdbt        generate a branch trace file (--text for text)
  ingest   --trace t.sdbt      lint an external trace (SDBP070-075 admission
                               diagnostics: unreadable, unknown format,
                               truncation, implausible density, degenerate
                               outcomes) and admit it as a benchmark;
                               accepts sdbt binary, sdbp text, and
                               `perf script` output, autodetected
                               (--format text|json, --deny-warnings)
  stats    [--trace t.sdbt]    characterize a trace or workload
  profile  --out p.prof        collect a per-branch bias profile
  select   --out h.hints       select static hints (--scheme, --profile)
  sim                          two-phase experiment (--trace for file mode)
  sweep                        parallel predictor size sweep (1KB..64KB)
  grid                         parallel Figure 7-style grid: paper predictors x
                               static schemes at --size on one benchmark;
                               --family spec95|server|h2p|imported sweeps a
                               whole workload family in one run (the stderr
                               summary reports MISPs/KI per family), and
                               --trace FILE grids over an imported trace
  hotspots                     top misprediction contributors (--top N)
  check                        static diagnostics: lint a spec file or the
                               inline options without running anything
                               (--spec f.spec, --hints h.hints,
                               --profile p.prof, --manifest m.jsonl,
                               --aliasing, --index-analysis, --suite,
                               --format text|json, --deny-warnings)
  artifact ls|inspect|gc       inspect a durable artifact store: list the
                               objects (ls), show one by digest
                               (inspect --digest HEX), or prune corrupt
                               objects, dangling links, and stale temp
                               files (gc); all take --store DIR
  bench-kernel                 time the simulation kernel (branches/sec per
                               predictor and size, vs the pre-optimization
                               reference kernel) and write a machine-readable
                               report (--out BENCH_simkernel.json, --quick
                               for the CI smoke budget)
  bench-passes                 time a profile-heavy grid with pass fusion on
                               and off and write a machine-readable report
                               (--out BENCH_passes.json, --quick for the CI
                               smoke budget)
  bench-frontier               run the predictor-frontier ablation — gshare,
                               bi-mode, 2bcgskew vs perceptron and tage-lite
                               under every selection scheme including
                               static_collide — and write a machine-readable
                               report (--out BENCH_frontier.json, --quick
                               for the CI smoke budget)
  bench-families               run the per-family grid — every family's
                               benchmarks x {gshare, agree, tage-lite} x
                               {none, static_95, static_acc} — report
                               MISPs/KI deltas per family, verify that
                               imported-trace cells replay bit-identically
                               to generator-backed ones, and write a
                               machine-readable report
                               (--out BENCH_families.json, --quick for the
                               CI smoke budget)

common options:
  --benchmark go|gcc|perl|m88ksim|compress|ijpeg   (default gcc); also
              server_web|server_db (context-switch interleaved, flat-bias
              server family), h2p_rare|h2p_churn (hard-to-predict family),
              and any name admitted by `sdbp ingest`
  --family spec95|server|h2p|imported              grid: sweep a whole family
  --input train|ref                                (default ref)
  --seed N                                         (default 2000)
  --instructions N                                 (default per workload)
  --predictor bimodal|ghist|gshare|bi-mode|2bcgskew|agree|yags|e-gskew|tournament|local|gselect|perceptron|tage-lite
  --size BYTES                                     (default 8192)
  --scheme none|static_95|static_<pct>|static_acc|static_col|static_collide
  --schemes a,b,c                                  grid: the scheme columns
                                                   (default none,static_95,
                                                   static_acc; first entry
                                                   is the Δ baseline;
                                                   static_collide cells on
                                                   analysis-opaque
                                                   predictors render n/a)
  --training self|cross|merged                     (default self)
  --shift                                          shift static outcomes into ghist
  --hints h.hints                                  hint database (trace mode)
  --threads N                                      sweep/grid worker threads
                                                   (default: SDBP_THREADS env,
                                                   then all cores)
  --store DIR                                      durable artifact store for
                                                   grid: profiles persist
                                                   across runs, and a
                                                   manifest.jsonl records
                                                   every finished cell
  --resume                                         with --store: replay cells
                                                   already completed in the
                                                   manifest instead of
                                                   rerunning them
  --max-cells N                                    with --store: stop after N
                                                   executed cells (testing
                                                   interruption/resume)
  --no-fuse                                        grid: disable fused
                                                   multi-pass profiling (one
                                                   traversal per profile
                                                   artifact, for A/B checks)
  --no-lockstep                                    sweep/grid: disable lockstep
                                                   multi-config measurement
                                                   (one traversal per cell,
                                                   for A/B checks)

parallelism:
  sweep and grid run their cells across worker threads sharing one artifact
  cache, so each benchmark's bias/accuracy profiles and branch streams are
  computed once and reused; results are bit-identical to a serial run. The
  stderr summary line reports threads, wall time, speedup, and cache
  hit/miss counters, plus the profile traversals saved by pass fusion
  (each benchmark's bias and accuracy profiles are collected in one fused
  trace traversal unless --no-fuse) and the measurement traversals saved
  by lockstep execution (cells sharing a branch stream ride one traversal
  together unless --no-lockstep; results stay bit-identical either way).
  The summary also reports per-cell throughput as min/median/max Mbr/s.
  SDBP_THREADS=N overrides the default thread count process-wide (the
  --threads flag wins when both are given).

diagnostics:
  check lints without simulating: spec problems (unknown names, bad sizes,
  unrealizable budgets), hint-database problems (duplicates, conflicts,
  stale or contradicted hints), profile/spec mismatches, and — with
  --aliasing — a static forecast of the branches most likely to suffer
  destructive interference in the configured predictor. With
  --index-analysis, check instead *proves* the predictor's collision
  structure with exact GF(2) linear algebra (linear predictors only:
  bimodal, ghist, gshare, gselect, e-gskew — see docs/index-analysis.md):
  guaranteed-collision PC classes, dead history bits, rank-deficient
  tables, and profiled branch pairs proven to alias at every history.
  Findings carry stable SDBPnnn codes (see docs/diagnostics.md). Exit
  status is non-zero on any error, or on warnings under --deny-warnings.
  With --manifest, check also lints a grid run manifest: parse damage,
  schema drift, duplicate cells, failed cells, and torn tails.

exit codes:
  0 success; 1 command failure (simulation error, failed check, I/O);
  2 usage error (unknown command, bad option value); 3 artifact-store or
  manifest corruption (see docs/artifacts.md).

examples:
  sdbp sim --benchmark gcc --predictor gshare --size 16384 --scheme static_acc
  sdbp sweep --benchmark m88ksim --predictor 2bcgskew --scheme static_95
  # Figure 7 of the paper (go, 8 KB predictors) on 4 threads:
  sdbp grid --benchmark go --size 8192 --threads 4
  sdbp gen --benchmark compress --out compress.sdbt --instructions 1000000
  sdbp sim --trace compress.sdbt --predictor bimodal --size 2048
  # sweep the whole server family in one run (per-family stderr summary):
  sdbp grid --family server --size 8192
  # admit an external trace (perf script output works too), then grid it:
  sdbp ingest --trace capture.sdbt
  sdbp grid --trace capture.sdbt --instructions 1000000
  # lint a spec file and forecast aliasing hotspots, machine-readable:
  sdbp check --spec run.spec --aliasing --format json
  # prove the index function's collision structure instead of sampling it:
  sdbp check --predictor gshare --size 1024 --index-analysis
  # durable grid: run once, interrupt at will, resume without recomputing:
  sdbp grid --benchmark gcc --store runs/gcc
  sdbp grid --benchmark gcc --store runs/gcc --resume
  sdbp artifact ls --store runs/gcc
";
