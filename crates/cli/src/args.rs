//! Minimal dependency-free argument parsing for the `sdbp` CLI.

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` options and flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    command: String,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `argv[1..]`: the first token is the subcommand, the rest are
    /// `--key value` pairs, `--key=value` tokens, or bare `--flag`s.
    ///
    /// The `--key=value` form is the only way to pass a value that itself
    /// starts with `--` (e.g. a negative number or a dashed string), since
    /// the space-separated form treats such a token as the next option.
    ///
    /// # Errors
    ///
    /// Returns a message for empty option names, empty `--key=` values, or
    /// tokens that are not options.
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Self, String> {
        let mut iter = argv.into_iter().peekable();
        let command = iter.next().unwrap_or_default();
        let mut options = HashMap::new();
        let mut flags = Vec::new();
        while let Some(token) = iter.next() {
            let Some(key) = token.strip_prefix("--") else {
                return Err(format!("unexpected argument '{token}' (expected --option)"));
            };
            if let Some((key, value)) = key.split_once('=') {
                if key.is_empty() {
                    return Err(format!("option '{token}' is missing a name before '='"));
                }
                if value.is_empty() {
                    return Err(format!("option '--{key}=' is missing a value after '='"));
                }
                options.insert(key.to_string(), value.to_string());
                continue;
            }
            if key.is_empty() {
                return Err("unexpected bare '--' (expected --option)".to_string());
            }
            match iter.peek() {
                Some(v) if !v.starts_with("--") => {
                    let value = iter.next().unwrap_or_default();
                    options.insert(key.to_string(), value);
                }
                _ => flags.push(key.to_string()),
            }
        }
        Ok(Self {
            command,
            options,
            flags,
        })
    }

    /// The subcommand name (empty when none was given).
    pub fn command(&self) -> &str {
        &self.command
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A string option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// A parsed option with a default.
    ///
    /// # Errors
    ///
    /// Reports the key and the malformed value.
    pub fn get_parsed_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("invalid --{key} '{v}': {e}")),
        }
    }

    /// Whether a bare `--flag` was given.
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = parse(&["sim", "--benchmark", "gcc", "--shift", "--size", "8192"]);
        assert_eq!(a.command(), "sim");
        assert_eq!(a.get("benchmark"), Some("gcc"));
        assert_eq!(a.get_or("input", "ref"), "ref");
        assert_eq!(a.get_parsed_or("size", 0usize).unwrap(), 8192);
        assert!(a.has_flag("shift"));
        assert!(!a.has_flag("text"));
    }

    #[test]
    fn empty_argv_is_empty_command() {
        let a = parse(&[]);
        assert_eq!(a.command(), "");
    }

    #[test]
    fn rejects_stray_positional() {
        let err = Args::parse(["sim".to_string(), "gcc".to_string()]).unwrap_err();
        assert!(err.contains("gcc"));
    }

    #[test]
    fn reports_bad_values() {
        let a = parse(&["sim", "--size", "zz"]);
        assert!(a.get_parsed_or("size", 0usize).is_err());
    }

    #[test]
    fn trailing_flag_works() {
        let a = parse(&["gen", "--text"]);
        assert!(a.has_flag("text"));
    }

    #[test]
    fn equals_syntax_parses_values() {
        let a = parse(&["sim", "--benchmark=gcc", "--size=8192"]);
        assert_eq!(a.get("benchmark"), Some("gcc"));
        assert_eq!(a.get_parsed_or("size", 0usize).unwrap(), 8192);
    }

    #[test]
    fn equals_syntax_allows_dashed_values() {
        let a = parse(&["sim", "--scheme=--weird", "--offset=-42"]);
        assert_eq!(a.get("scheme"), Some("--weird"));
        assert_eq!(a.get_parsed_or("offset", 0i64).unwrap(), -42);
    }

    #[test]
    fn equals_value_may_contain_equals() {
        let a = parse(&["sim", "--filter=key=value"]);
        assert_eq!(a.get("filter"), Some("key=value"));
    }

    #[test]
    fn rejects_empty_equals_forms() {
        assert!(Args::parse(["sim".into(), "--=x".into()]).is_err());
        assert!(Args::parse(["sim".into(), "--key=".into()]).is_err());
        assert!(Args::parse(["sim".into(), "--".into()]).is_err());
    }

    #[test]
    fn space_form_still_swallows_next_nonoption() {
        let a = parse(&["sim", "--seed", "7", "--shift"]);
        assert_eq!(a.get("seed"), Some("7"));
        assert!(a.has_flag("shift"));
    }
}
