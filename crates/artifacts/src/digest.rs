//! Content digests for artifact addressing.
//!
//! [`Digest`] is a 128-bit fingerprint built from two independent FNV-1a
//! lanes. It is *not* cryptographic — the store trusts its own producers —
//! but 128 bits of a decent mixing function makes accidental collisions
//! across a sweep's few thousand objects vanishingly unlikely, and FNV keeps
//! the hot profile-hashing path allocation- and dependency-free.

use crate::error::CodecError;
use std::fmt;
use std::str::FromStr;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Offset basis of the second lane: the standard basis perturbed by the
/// golden-ratio constant so the lanes start decorrelated.
const FNV_OFFSET_B: u64 = FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15;

/// A 128-bit content digest, printed as 32 lowercase hex digits.
///
/// # Examples
///
/// ```
/// use sdbp_artifacts::Digest;
///
/// let d = Digest::of(b"hello");
/// let text = d.to_string();
/// assert_eq!(text.len(), 32);
/// assert_eq!(text.parse::<Digest>().unwrap(), d);
/// assert_ne!(d, Digest::of(b"hello "));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u64; 2]);

impl Digest {
    /// Digests a byte slice in one call.
    pub fn of(bytes: &[u8]) -> Self {
        let mut h = Hasher::new();
        h.update(bytes);
        h.finish()
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.0[0], self.0[1])
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({self})")
    }
}

impl FromStr for Digest {
    type Err = CodecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(CodecError::Invalid {
                context: format!("digest '{s}' is not 32 hex digits"),
            });
        }
        let hi = u64::from_str_radix(&s[..16], 16).expect("validated hex");
        let lo = u64::from_str_radix(&s[16..], 16).expect("validated hex");
        Ok(Digest([hi, lo]))
    }
}

/// Incremental digest builder.
///
/// The convenience writers ([`Hasher::write_u64`], [`Hasher::write_str`])
/// frame their input (fixed width, or length-prefixed) so that distinct
/// field sequences cannot collide by concatenation.
#[derive(Debug, Clone)]
pub struct Hasher {
    a: u64,
    b: u64,
}

impl Hasher {
    /// Starts a fresh digest.
    pub fn new() -> Self {
        Self {
            a: FNV_OFFSET,
            b: FNV_OFFSET_B,
        }
    }

    /// Feeds raw bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            // The second lane sees each byte bit-flipped, so the lanes never
            // walk through the same state sequence.
            self.b = (self.b ^ u64::from(!byte)).wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a `u64` as 8 little-endian bytes.
    pub fn write_u64(&mut self, value: u64) {
        self.update(&value.to_le_bytes());
    }

    /// Feeds a string, length-prefixed.
    pub fn write_str(&mut self, value: &str) {
        self.write_u64(value.len() as u64);
        self.update(value.as_bytes());
    }

    /// Finalizes the digest (the hasher may keep accumulating afterwards).
    pub fn finish(&self) -> Digest {
        // One avalanche round per lane: plain FNV's final state weakly mixes
        // the high bits, and store sharding uses the top byte.
        Digest([mix(self.a), mix(self.b)])
    }
}

impl Default for Hasher {
    fn default() -> Self {
        Self::new()
    }
}

/// SplitMix64-style finalizer.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn display_parse_roundtrip() {
        let d = Digest([0x0123_4567_89ab_cdef, 0xfedc_ba98_7654_3210]);
        assert_eq!(d.to_string(), "0123456789abcdeffedcba9876543210");
        assert_eq!(d.to_string().parse::<Digest>().unwrap(), d);
        assert_eq!(format!("{d:?}"), format!("Digest({d})"));
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!("".parse::<Digest>().is_err());
        assert!("0123".parse::<Digest>().is_err());
        assert!("zz23456789abcdeffedcba9876543210"
            .parse::<Digest>()
            .is_err());
        assert!("0123456789abcdeffedcba98765432100"
            .parse::<Digest>()
            .is_err());
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = Hasher::new();
        h.update(b"hel");
        h.update(b"lo");
        assert_eq!(h.finish(), Digest::of(b"hello"));
    }

    #[test]
    fn framing_prevents_concatenation_collisions() {
        let mut a = Hasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Hasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn lanes_are_independent() {
        // A pure single-lane FNV would make both halves equal for empty
        // input; the perturbed second lane must not.
        let d = Digest::of(b"");
        assert_ne!(d.0[0], d.0[1]);
        let d = Digest::of(b"x");
        assert_ne!(d.0[0], d.0[1]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn distinct_small_inputs_do_not_collide(a in proptest::collection::vec(any::<u8>(), 0..24),
                                                b in proptest::collection::vec(any::<u8>(), 0..24)) {
            if a != b {
                prop_assert_ne!(Digest::of(&a), Digest::of(&b));
            }
        }

        #[test]
        fn hex_roundtrip_holds(hi in any::<u64>(), lo in any::<u64>()) {
            let d = Digest([hi, lo]);
            prop_assert_eq!(d.to_string().parse::<Digest>().unwrap(), d);
        }
    }
}
