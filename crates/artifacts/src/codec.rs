//! The binary artifact envelope and the [`Codec`] trait.
//!
//! Every serialized artifact is wrapped in a self-describing envelope:
//!
//! ```text
//! "SDBA"                     4-byte magic
//! schema length              u16 LE
//! schema name                UTF-8 bytes (e.g. "sdbp-bias-profile")
//! schema version             u32 LE
//! payload length             u64 LE
//! payload                    schema-specific bytes
//! checksum                   u64 LE, FNV-1a over all preceding bytes
//! ```
//!
//! [`Codec::from_bytes`] validates each layer in order and reports the first
//! failure as a typed [`CodecError`]: wrong magic, foreign schema, future
//! version, short buffer, checksum mismatch, or trailing garbage. The
//! checksum makes silent truncation and bit rot detectable before a payload
//! decoder ever runs.
//!
//! All integers are little-endian and fixed-width; floats travel as their
//! IEEE-754 bit patterns ([`f64::to_bits`]) so round-trips are exact.

use crate::error::CodecError;

/// The 4-byte magic that opens every sdbp artifact.
pub const MAGIC: &[u8; 4] = b"SDBA";

/// FNV-1a over a byte slice (the envelope checksum).
fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Appends fixed-width little-endian primitives to a byte buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `bool` as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Writes an `f64` as its IEEE-754 bit pattern (exact round-trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a string, `u32` length-prefixed.
    pub fn str(&mut self, v: &str) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }
}

/// A cursor over encoded bytes; every read reports truncation as a typed
/// error naming the field being decoded.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Starts decoding at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes `n` raw bytes.
    pub fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated { context });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a `u16`.
    pub fn u16(&mut self, context: &'static str) -> Result<u16, CodecError> {
        let b = self.take(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, CodecError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self, context: &'static str) -> Result<u64, CodecError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `bool`, rejecting any byte other than 0 or 1.
    pub fn bool(&mut self, context: &'static str) -> Result<bool, CodecError> {
        match self.u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::Invalid {
                context: format!("{context}: byte {other} is not a bool"),
            }),
        }
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self, context: &'static str) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self, context: &'static str) -> Result<String, CodecError> {
        let len = self.u32(context)? as usize;
        // An absurd length is a corrupt length field, not a real request:
        // bail before asking the allocator for it.
        if len > self.remaining() {
            return Err(CodecError::Truncated { context });
        }
        let bytes = self.take(len, context)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Invalid {
            context: format!("{context}: string is not UTF-8"),
        })
    }
}

/// A type with a stable, versioned binary representation.
///
/// Implementors provide the schema identity and the payload encoding; the
/// trait's provided [`Codec::to_bytes`] / [`Codec::from_bytes`] add the
/// envelope (magic, schema, version, length, checksum) and its validation.
pub trait Codec: Sized {
    /// Stable schema name stored in the envelope (e.g. `"sdbp-report"`).
    const SCHEMA: &'static str;
    /// Schema version this build reads and writes. Decoding any other
    /// version fails with [`CodecError::VersionUnsupported`].
    const VERSION: u32;

    /// Writes the payload (no envelope).
    fn encode_payload(&self, e: &mut Encoder);

    /// Reads the payload (no envelope). Implementations need not check for
    /// trailing bytes; the envelope decoder does.
    fn decode_payload(d: &mut Decoder<'_>) -> Result<Self, CodecError>;

    /// Serializes with the full envelope.
    fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Encoder::new();
        self.encode_payload(&mut payload);
        let payload = payload.into_bytes();

        let mut e = Encoder::new();
        e.buf.extend_from_slice(MAGIC);
        e.u16(Self::SCHEMA.len() as u16);
        e.buf.extend_from_slice(Self::SCHEMA.as_bytes());
        e.u32(Self::VERSION);
        e.u64(payload.len() as u64);
        e.buf.extend_from_slice(&payload);
        let sum = checksum(&e.buf);
        e.u64(sum);
        e.into_bytes()
    }

    /// Deserializes, validating every envelope layer.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`]: bad magic, schema or version mismatch,
    /// truncation, checksum failure, trailing bytes, or an invalid payload.
    fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let (schema, version, payload, consumed) = split_envelope(bytes)?;
        if schema != Self::SCHEMA {
            return Err(CodecError::SchemaMismatch {
                expected: Self::SCHEMA.to_string(),
                found: schema,
            });
        }
        if version != Self::VERSION {
            return Err(CodecError::VersionUnsupported {
                schema,
                found: version,
                supported: Self::VERSION,
            });
        }
        if bytes.len() > consumed {
            return Err(CodecError::TrailingBytes {
                extra: bytes.len() - consumed,
            });
        }
        let mut d = Decoder::new(payload);
        let value = Self::decode_payload(&mut d)?;
        if !d.is_done() {
            return Err(CodecError::TrailingBytes {
                extra: d.remaining(),
            });
        }
        Ok(value)
    }
}

/// Validates one envelope and returns `(schema, version, payload, consumed)`
/// where `consumed` is the envelope's total length including the checksum.
fn split_envelope(bytes: &[u8]) -> Result<(String, u32, &[u8], usize), CodecError> {
    let mut d = Decoder::new(bytes);
    if d.take(4, "magic")? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let schema_len = d.u16("schema length")? as usize;
    let schema_bytes = d.take(schema_len, "schema name")?;
    let schema = std::str::from_utf8(schema_bytes)
        .map_err(|_| CodecError::Invalid {
            context: "schema name is not UTF-8".to_string(),
        })?
        .to_string();
    let version = d.u32("schema version")?;
    let payload_len = d.u64("payload length")? as usize;
    let payload = d.take(payload_len, "payload")?;
    let checksum_at = bytes.len() - d.remaining();
    let stored = d.u64("checksum")?;
    if checksum(&bytes[..checksum_at]) != stored {
        return Err(CodecError::ChecksumMismatch);
    }
    Ok((schema, version, payload, checksum_at + 8))
}

/// Reads just the schema name and version from an envelope, verifying the
/// checksum — how `sdbp artifact ls` labels objects without knowing their
/// types in advance.
///
/// # Errors
///
/// The same envelope-level [`CodecError`]s as [`Codec::from_bytes`].
pub fn peek_schema(bytes: &[u8]) -> Result<(String, u32), CodecError> {
    let (schema, version, _, consumed) = split_envelope(bytes)?;
    if bytes.len() > consumed {
        return Err(CodecError::TrailingBytes {
            extra: bytes.len() - consumed,
        });
    }
    Ok((schema, version))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Sample {
        id: u64,
        name: String,
        ratio: f64,
        flag: bool,
    }

    impl Codec for Sample {
        const SCHEMA: &'static str = "test-sample";
        const VERSION: u32 = 3;

        fn encode_payload(&self, e: &mut Encoder) {
            e.u64(self.id);
            e.str(&self.name);
            e.f64(self.ratio);
            e.bool(self.flag);
        }

        fn decode_payload(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
            Ok(Sample {
                id: d.u64("id")?,
                name: d.str("name")?,
                ratio: d.f64("ratio")?,
                flag: d.bool("flag")?,
            })
        }
    }

    fn sample() -> Sample {
        Sample {
            id: 42,
            name: "gcc.train".into(),
            ratio: 0.95,
            flag: true,
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let bytes = sample().to_bytes();
        assert_eq!(Sample::from_bytes(&bytes).unwrap(), sample());
        assert_eq!(peek_schema(&bytes).unwrap(), ("test-sample".to_string(), 3));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert_eq!(Sample::from_bytes(&bytes), Err(CodecError::BadMagic));
        assert!(Sample::from_bytes(b"").is_err());
    }

    #[test]
    fn schema_and_version_mismatches_are_typed() {
        #[derive(Debug)]
        struct Other(u64);
        impl Codec for Other {
            const SCHEMA: &'static str = "test-other";
            const VERSION: u32 = 3;
            fn encode_payload(&self, e: &mut Encoder) {
                e.u64(self.0);
            }
            fn decode_payload(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
                Ok(Other(d.u64("v")?))
            }
        }
        let err = Sample::from_bytes(&Other(1).to_bytes()).unwrap_err();
        assert!(matches!(err, CodecError::SchemaMismatch { .. }), "{err}");

        #[derive(Debug)]
        struct FutureSample;
        impl Codec for FutureSample {
            const SCHEMA: &'static str = "test-sample";
            const VERSION: u32 = 4;
            fn encode_payload(&self, _: &mut Encoder) {}
            fn decode_payload(_: &mut Decoder<'_>) -> Result<Self, CodecError> {
                Ok(FutureSample)
            }
        }
        let err = Sample::from_bytes(&FutureSample.to_bytes()).unwrap_err();
        assert_eq!(
            err,
            CodecError::VersionUnsupported {
                schema: "test-sample".into(),
                found: 4,
                supported: 3
            }
        );
    }

    #[test]
    fn every_truncation_point_errors_without_panic() {
        let bytes = sample().to_bytes();
        for len in 0..bytes.len() {
            let err = Sample::from_bytes(&bytes[..len]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CodecError::Truncated { .. } | CodecError::ChecksumMismatch
                ),
                "prefix of {len}: {err}"
            );
        }
    }

    #[test]
    fn corruption_anywhere_is_detected() {
        let clean = sample().to_bytes();
        // Skip the magic (corrupting it yields BadMagic, also typed) and
        // flip one bit at every other position.
        for i in 4..clean.len() {
            let mut bytes = clean.clone();
            bytes[i] ^= 0x40;
            assert!(
                Sample::from_bytes(&bytes).is_err(),
                "flip at {i} went unnoticed"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert_eq!(
            Sample::from_bytes(&bytes),
            Err(CodecError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn bool_rejects_non_boolean_bytes() {
        let mut e = Encoder::new();
        e.u8(7);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert!(matches!(d.bool("flag"), Err(CodecError::Invalid { .. })));
    }

    #[test]
    fn float_bits_roundtrip_exactly() {
        for v in [0.0, -0.0, 0.1, f64::MIN_POSITIVE, f64::NAN, f64::INFINITY] {
            let mut e = Encoder::new();
            e.f64(v);
            let bytes = e.into_bytes();
            let back = Decoder::new(&bytes).f64("v").unwrap();
            assert_eq!(v.to_bits(), back.to_bits());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn arbitrary_samples_roundtrip(id in any::<u64>(),
                                       ratio in any::<u64>(),
                                       flag in any::<bool>(),
                                       name in proptest::collection::vec(any::<u8>(), 0..16)) {
            let s = Sample {
                id,
                name: name.iter().map(|b| char::from(b'a' + b % 26)).collect(),
                ratio: f64::from_bits(ratio),
                flag,
            };
            let back = Sample::from_bytes(&s.to_bytes()).unwrap();
            prop_assert_eq!(back.id, s.id);
            prop_assert_eq!(back.name, s.name);
            prop_assert_eq!(back.ratio.to_bits(), s.ratio.to_bits());
            prop_assert_eq!(back.flag, s.flag);
        }

        #[test]
        fn random_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = Sample::from_bytes(&bytes);
            let _ = peek_schema(&bytes);
        }
    }
}
