//! The content-addressed object store.
//!
//! Layout, modeled after git's loose-object store:
//!
//! ```text
//! <root>/objects/<aa>/<bbbbbbbb...>    aa = first 2 hex digits of the digest
//! <root>/links/<aa>/<bbbbbbbb...>      named pointers into objects/
//! ```
//!
//! Objects are immutable and keyed by the [`Digest`] of their bytes, so a
//! write is naturally idempotent: if the path already exists the content is
//! already right. Writes go to a temp file in the same directory and then
//! [`std::fs::rename`] into place, which is atomic on POSIX filesystems — a
//! killed process can leave stray `tmp-*` files (cleaned by `gc`) but never
//! a half-written object under a valid name.
//!
//! **Links** are the store's ref layer (like git refs): a link is named by a
//! *derived* digest — e.g. the hash of `(benchmark, input, seed, budget)` —
//! and its one-line content is the content digest of the object it points
//! at. They are what lets a cache ask "do we already have the bias profile
//! of this run?" without knowing the profile's bytes in advance.
//!
//! Reads re-digest the content and validate the envelope; damage surfaces
//! as the typed [`StoreError::Corrupt`], never a panic.

use crate::codec::{peek_schema, Codec};
use crate::digest::Digest;
use crate::error::{CodecError, StoreError};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Disambiguates temp files when several threads (or processes on a shared
/// filesystem) write into one store concurrently.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A content-addressed store of serialized artifacts on disk.
///
/// Cheap to clone conceptually (it is just a root path); share one behind an
/// `Arc` when many sweep workers write through it.
///
/// # Examples
///
/// ```no_run
/// use sdbp_artifacts::{Digest, Store};
///
/// # fn main() -> Result<(), sdbp_artifacts::StoreError> {
/// let store = Store::open("run-store")?;
/// let digest = store.put_bytes_addressed(b"payload")?;
/// assert_eq!(store.get_bytes(digest)?, Some(b"payload".to_vec()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
}

/// One object in the store, as listed by [`Store::list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreEntry {
    /// The object's content digest (its name).
    pub digest: Digest,
    /// Size in bytes.
    pub size: u64,
    /// Full path of the object file.
    pub path: PathBuf,
}

impl StoreEntry {
    /// The schema name and version of the stored artifact, if its envelope
    /// validates; the [`CodecError`] otherwise (how `artifact ls` flags
    /// damage without knowing artifact types).
    pub fn schema(&self) -> Result<(String, u32), StoreError> {
        let path = &self.path;
        let bytes = fs::read(path).map_err(|e| StoreError::io(path.display().to_string(), e))?;
        validate_content(&bytes, self.digest, path)?;
        peek_schema(&bytes).map_err(|source| StoreError::Corrupt {
            path: path.display().to_string(),
            source,
        })
    }
}

/// Atomically writes `bytes` at `path` via a same-directory temp file,
/// creating the shard directory if needed.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let dir = path.parent().expect("store paths have a shard directory");
    fs::create_dir_all(dir).map_err(|e| StoreError::io(dir.display().to_string(), e))?;
    let tmp = dir.join(format!(
        "tmp-{}-{}",
        std::process::id(),
        TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let write = |tmp: &Path| -> std::io::Result<()> {
        let mut f = fs::File::create(tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        Ok(())
    };
    if let Err(e) = write(&tmp) {
        let _ = fs::remove_file(&tmp);
        return Err(StoreError::io(tmp.display().to_string(), e));
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(StoreError::io(path.display().to_string(), e));
    }
    Ok(())
}

/// Checks stored bytes still hash to the digest they are filed under.
fn validate_content(bytes: &[u8], digest: Digest, path: &Path) -> Result<(), StoreError> {
    let actual = Digest::of(bytes);
    if actual != digest {
        return Err(StoreError::Corrupt {
            path: path.display().to_string(),
            source: CodecError::Invalid {
                context: format!("content hashes to {actual}, filed under {digest}"),
            },
        });
    }
    Ok(())
}

impl Store {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        for area in ["objects", "links"] {
            let dir = root.join(area);
            fs::create_dir_all(&dir).map_err(|e| StoreError::io(dir.display().to_string(), e))?;
        }
        Ok(Self { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The path an object with this digest lives at.
    pub fn object_path(&self, digest: Digest) -> PathBuf {
        let hex = digest.to_string();
        self.root.join("objects").join(&hex[..2]).join(&hex[2..])
    }

    /// The path a link with this name lives at.
    pub fn link_path(&self, name: Digest) -> PathBuf {
        let hex = name.to_string();
        self.root.join("links").join(&hex[..2]).join(&hex[2..])
    }

    /// Whether an object with this digest exists.
    pub fn contains(&self, digest: Digest) -> bool {
        self.object_path(digest).exists()
    }

    /// Writes raw bytes under an explicit digest. Returns `false` (without
    /// touching the filesystem) when the object already exists.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on any filesystem failure.
    pub fn put_bytes(&self, digest: Digest, bytes: &[u8]) -> Result<bool, StoreError> {
        let path = self.object_path(digest);
        if path.exists() {
            return Ok(false);
        }
        write_atomic(&path, bytes)?;
        Ok(true)
    }

    /// Digests `bytes` and stores them under that digest.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on any filesystem failure.
    pub fn put_bytes_addressed(&self, bytes: &[u8]) -> Result<Digest, StoreError> {
        let digest = Digest::of(bytes);
        self.put_bytes(digest, bytes)?;
        Ok(digest)
    }

    /// Writes (or atomically replaces) a link: a derived-key name pointing
    /// at a content digest in `objects/`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on any filesystem failure.
    pub fn put_link(&self, name: Digest, target: Digest) -> Result<(), StoreError> {
        write_atomic(&self.link_path(name), format!("{target}\n").as_bytes())
    }

    /// Resolves a link to the content digest it names; `Ok(None)` when the
    /// link does not exist.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure, [`StoreError::Corrupt`]
    /// when the link file's content is not a digest.
    pub fn get_link(&self, name: Digest) -> Result<Option<Digest>, StoreError> {
        let path = self.link_path(name);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::io(path.display().to_string(), e)),
        };
        text.trim()
            .parse::<Digest>()
            .map(Some)
            .map_err(|source| StoreError::Corrupt {
                path: path.display().to_string(),
                source,
            })
    }

    /// Deletes a link; `Ok(false)` when it was not there.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    pub fn remove_link(&self, name: Digest) -> Result<bool, StoreError> {
        let path = self.link_path(name);
        match fs::remove_file(&path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(StoreError::io(path.display().to_string(), e)),
        }
    }

    /// Reads an object's raw bytes; `Ok(None)` when absent. Content is
    /// re-digested, so a damaged object reads as [`StoreError::Corrupt`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure, [`StoreError::Corrupt`] on
    /// content/digest mismatch.
    pub fn get_bytes(&self, digest: Digest) -> Result<Option<Vec<u8>>, StoreError> {
        let path = self.object_path(digest);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::io(path.display().to_string(), e)),
        };
        validate_content(&bytes, digest, &path)?;
        Ok(Some(bytes))
    }

    /// Serializes `value` and stores it, returning the content digest.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on any filesystem failure.
    pub fn put<T: Codec>(&self, value: &T) -> Result<Digest, StoreError> {
        self.put_bytes_addressed(&value.to_bytes())
    }

    /// Reads and decodes an object; `Ok(None)` when absent.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure, [`StoreError::Corrupt`]
    /// when the object exists but fails digest or envelope validation.
    pub fn get<T: Codec>(&self, digest: Digest) -> Result<Option<T>, StoreError> {
        let Some(bytes) = self.get_bytes(digest)? else {
            return Ok(None);
        };
        T::from_bytes(&bytes)
            .map(Some)
            .map_err(|source| StoreError::Corrupt {
                path: self.object_path(digest).display().to_string(),
                source,
            })
    }

    /// Deletes an object; `Ok(false)` when it was not there.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    pub fn remove(&self, digest: Digest) -> Result<bool, StoreError> {
        let path = self.object_path(digest);
        match fs::remove_file(&path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(StoreError::io(path.display().to_string(), e)),
        }
    }

    /// Lists every object, sorted by digest. Stray temp files and foreign
    /// names are skipped, not errors.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when a directory cannot be read.
    pub fn list(&self) -> Result<Vec<StoreEntry>, StoreError> {
        let objects = self.root.join("objects");
        let mut entries = Vec::new();
        let read_dir = |dir: &Path| -> Result<Vec<fs::DirEntry>, StoreError> {
            fs::read_dir(dir)
                .map_err(|e| StoreError::io(dir.display().to_string(), e))?
                .collect::<Result<_, _>>()
                .map_err(|e| StoreError::io(dir.display().to_string(), e))
        };
        for shard in read_dir(&objects)? {
            if !shard.path().is_dir() {
                continue;
            }
            let prefix = shard.file_name();
            let Some(prefix) = prefix.to_str() else {
                continue;
            };
            for object in read_dir(&shard.path())? {
                let Some(rest) = object.file_name().to_str().map(String::from) else {
                    continue;
                };
                let Ok(digest) = format!("{prefix}{rest}").parse::<Digest>() else {
                    continue; // temp files, editor droppings
                };
                let meta = object
                    .metadata()
                    .map_err(|e| StoreError::io(object.path().display().to_string(), e))?;
                entries.push(StoreEntry {
                    digest,
                    size: meta.len(),
                    path: object.path(),
                });
            }
        }
        entries.sort_by_key(|e| e.digest);
        Ok(entries)
    }

    /// Deletes objects whose content no longer matches their digest or whose
    /// envelope fails validation, links that are unreadable or point at a
    /// missing object, plus stray temp files in both areas. Returns
    /// `(removed, kept)` counts.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the sweep itself cannot read or delete.
    pub fn gc(&self) -> Result<(usize, usize), StoreError> {
        let mut removed = 0;
        let mut kept = 0;
        for entry in self.list()? {
            match entry.schema() {
                Ok(_) => kept += 1,
                Err(StoreError::Corrupt { .. }) => {
                    self.remove(entry.digest)?;
                    removed += 1;
                }
                Err(e) => return Err(e),
            }
        }
        for name in self.link_names()? {
            let broken = match self.get_link(name) {
                Ok(Some(target)) => !self.contains(target),
                Ok(None) => false, // raced with a concurrent remove
                Err(StoreError::Corrupt { .. }) => true,
                Err(e) => return Err(e),
            };
            if broken {
                self.remove_link(name)?;
                removed += 1;
            } else {
                kept += 1;
            }
        }
        // Stray temp files from killed writers.
        for area in ["objects", "links"] {
            let Ok(shards) = fs::read_dir(self.root.join(area)) else {
                continue;
            };
            for shard in shards.flatten() {
                if !shard.path().is_dir() {
                    continue;
                }
                if let Ok(files) = fs::read_dir(shard.path()) {
                    for file in files.flatten() {
                        let name = file.file_name();
                        if name.to_str().is_some_and(|n| n.starts_with("tmp-")) {
                            let path = file.path();
                            fs::remove_file(&path)
                                .map_err(|e| StoreError::io(path.display().to_string(), e))?;
                            removed += 1;
                        }
                    }
                }
            }
        }
        Ok((removed, kept))
    }

    /// Every link name currently present, sorted.
    fn link_names(&self) -> Result<Vec<Digest>, StoreError> {
        let links = self.root.join("links");
        let mut names = Vec::new();
        let shards = match fs::read_dir(&links) {
            Ok(shards) => shards,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(names),
            Err(e) => return Err(StoreError::io(links.display().to_string(), e)),
        };
        for shard in shards.flatten() {
            if !shard.path().is_dir() {
                continue;
            }
            let Some(prefix) = shard.file_name().to_str().map(String::from) else {
                continue;
            };
            let Ok(files) = fs::read_dir(shard.path()) else {
                continue;
            };
            for file in files.flatten() {
                let Some(rest) = file.file_name().to_str().map(String::from) else {
                    continue;
                };
                if let Ok(name) = format!("{prefix}{rest}").parse::<Digest>() {
                    names.push(name);
                }
            }
        }
        names.sort();
        Ok(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{Decoder, Encoder};

    #[derive(Debug, Clone, PartialEq)]
    struct Note(String);

    impl Codec for Note {
        const SCHEMA: &'static str = "test-note";
        const VERSION: u32 = 1;
        fn encode_payload(&self, e: &mut Encoder) {
            e.str(&self.0);
        }
        fn decode_payload(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
            Ok(Note(d.str("note")?))
        }
    }

    fn temp_store(tag: &str) -> Store {
        let dir = std::env::temp_dir().join(format!(
            "sdbp-store-test-{tag}-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        Store::open(dir).unwrap()
    }

    #[test]
    fn put_get_roundtrip_and_idempotence() {
        let store = temp_store("roundtrip");
        let digest = store.put(&Note("hello".into())).unwrap();
        assert!(store.contains(digest));
        assert_eq!(
            store.get::<Note>(digest).unwrap(),
            Some(Note("hello".into()))
        );
        // Second put of identical content is a no-op.
        assert!(!store
            .put_bytes(digest, &Note("hello".into()).to_bytes())
            .unwrap());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn absent_objects_read_as_none() {
        let store = temp_store("absent");
        let digest = Digest::of(b"never stored");
        assert_eq!(store.get_bytes(digest).unwrap(), None);
        assert_eq!(store.get::<Note>(digest).unwrap(), None);
        assert!(!store.remove(digest).unwrap());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn truncated_object_is_typed_corruption_not_a_panic() {
        let store = temp_store("truncated");
        let digest = store.put(&Note("soon to be damaged".into())).unwrap();
        let path = store.object_path(digest);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        match store.get::<Note>(digest) {
            Err(StoreError::Corrupt { path: p, .. }) => {
                assert!(p.contains(&digest.to_string()[2..]))
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn bitflipped_object_is_detected() {
        let store = temp_store("bitflip");
        let digest = store.put(&Note("flip me".into())).unwrap();
        let path = store.object_path(digest);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            store.get::<Note>(digest),
            Err(StoreError::Corrupt { .. })
        ));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn list_is_sorted_and_skips_temp_files() {
        let store = temp_store("list");
        let d1 = store.put(&Note("one".into())).unwrap();
        let d2 = store.put(&Note("two".into())).unwrap();
        let shard = store.object_path(d1);
        fs::write(shard.parent().unwrap().join("tmp-999-0"), b"junk").unwrap();
        let entries = store.list().unwrap();
        let digests: Vec<Digest> = entries.iter().map(|e| e.digest).collect();
        let mut expected = vec![d1, d2];
        expected.sort();
        assert_eq!(digests, expected);
        assert_eq!(entries[0].schema().unwrap(), ("test-note".to_string(), 1));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn links_resolve_and_replace_atomically() {
        let store = temp_store("links");
        let target = store.put(&Note("pointed at".into())).unwrap();
        let name = Digest::of(b"derived cache key");
        assert_eq!(store.get_link(name).unwrap(), None);
        store.put_link(name, target).unwrap();
        assert_eq!(store.get_link(name).unwrap(), Some(target));
        // Links are replaceable (unlike objects).
        let other = store.put(&Note("new target".into())).unwrap();
        store.put_link(name, other).unwrap();
        assert_eq!(store.get_link(name).unwrap(), Some(other));
        assert!(store.remove_link(name).unwrap());
        assert!(!store.remove_link(name).unwrap());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn gc_prunes_dangling_and_garbled_links() {
        let store = temp_store("gc-links");
        let target = store.put(&Note("kept".into())).unwrap();
        let good = Digest::of(b"good link");
        store.put_link(good, target).unwrap();
        let dangling = Digest::of(b"dangling link");
        store
            .put_link(dangling, Digest::of(b"no such object"))
            .unwrap();
        let garbled = Digest::of(b"garbled link");
        store.put_link(garbled, target).unwrap();
        fs::write(store.link_path(garbled), "not a digest").unwrap();
        let (removed, kept) = store.gc().unwrap();
        assert_eq!((removed, kept), (2, 2), "object + good link kept");
        assert_eq!(store.get_link(good).unwrap(), Some(target));
        assert_eq!(store.get_link(dangling).unwrap(), None);
        assert_eq!(store.get_link(garbled).unwrap(), None);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn gc_removes_damage_and_keeps_the_healthy() {
        let store = temp_store("gc");
        let keep = store.put(&Note("healthy".into())).unwrap();
        let damaged = store.put(&Note("doomed".into())).unwrap();
        let path = store.object_path(damaged);
        fs::write(&path, b"garbage").unwrap();
        let tmp = path.parent().unwrap().join("tmp-1-1");
        fs::write(&tmp, b"stray").unwrap();
        let (removed, kept) = store.gc().unwrap();
        assert_eq!((removed, kept), (2, 1), "damaged object + stray temp");
        assert!(store.contains(keep));
        assert!(!store.contains(damaged));
        assert!(!tmp.exists());
        let _ = fs::remove_dir_all(store.root());
    }
}
