//! A minimal JSON value, renderer and parser.
//!
//! Run manifests (`manifest.jsonl`) are JSON so they stay greppable and
//! tool-friendly; this module is the dependency-free subset the manifest
//! needs: objects preserve insertion order (renders are deterministic),
//! integers are `i64`, floats render via Rust's shortest round-trip
//! formatting, and strings escape per RFC 8259.
//!
//! # Examples
//!
//! ```
//! use sdbp_artifacts::Json;
//!
//! let line = Json::obj([
//!     ("cell", Json::Int(3)),
//!     ("status", Json::str("ok")),
//! ]);
//! let text = line.render();
//! assert_eq!(text, r#"{"cell":3,"status":"ok"}"#);
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(back.get("cell").and_then(Json::as_i64), Some(3));
//! ```

use crate::error::JsonError;
use std::fmt;

/// A JSON value. Object members keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (JSON numbers without fraction or exponent).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An object from key/value pairs, in order.
    pub fn obj<K: Into<String>>(members: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Object member lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The object members, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// The array elements, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders compact JSON (no whitespace), deterministically.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    // `{:?}` is Rust's shortest round-trip float form.
                    out.push_str(&format!("{v:?}"));
                } else {
                    // JSON has no NaN/Infinity literal.
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document, requiring it to span the whole input.
    ///
    /// # Errors
    ///
    /// [`JsonError`] with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", char::from(byte))))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(format!("unexpected character '{}'", char::from(other)))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            // Surrogates would need pairing; the renderer
                            // never emits them, so reject rather than lie.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.error("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 3; // +1 below completes the 4 digits
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[start..];
                    let text =
                        std::str::from_utf8(rest).map_err(|_| self.error("string is not UTF-8"))?;
                    let c = text.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.error(format!("bad number '{text}'")))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.error(format!("bad number '{text}'")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_deterministic_objects() {
        let v = Json::obj([
            ("b", Json::Int(-2)),
            ("a", Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("s", Json::str("hi")),
        ]);
        assert_eq!(v.render(), r#"{"b":-2,"a":[null,true],"s":"hi"}"#);
        assert_eq!(v.to_string(), v.render());
    }

    #[test]
    fn escapes_and_unescapes() {
        let v = Json::str("a\"b\\c\nd\te\u{1}");
        let text = v.render();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#" { "a" : [ 1 , 2.5 , { "b" : false } ] , "c" : null } "#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_i64(), Some(1));
        assert_eq!(arr[1], Json::Float(2.5));
        assert_eq!(arr[2].get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("c"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn integers_and_floats_are_distinguished() {
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::Int(9).as_u64(), Some(9));
        assert_eq!(Json::Int(-9).as_u64(), None);
    }

    #[test]
    fn float_rendering_roundtrips() {
        for v in [0.1, 1.0 / 3.0, 1e-9, 12345.6789] {
            let text = Json::Float(v).render();
            match Json::parse(&text).unwrap() {
                Json::Float(back) => assert_eq!(back.to_bits(), v.to_bits(), "{text}"),
                other => panic!("{text} parsed as {other:?}"),
            }
        }
        assert_eq!(Json::Float(f64::NAN).render(), "null");
    }

    #[test]
    fn parse_errors_carry_offsets() {
        let err = Json::parse(r#"{"a" 1}"#).unwrap_err();
        assert_eq!(err.offset, 5);
        assert!(err.message.contains(':'));
        assert!(Json::parse("").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse(r#""unterminated"#).is_err());
        assert!(Json::parse(r#""bad \q escape""#).is_err());
    }

    #[test]
    fn unicode_survives() {
        let v = Json::str("héllo → 世界");
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        assert_eq!(Json::parse(r#""é""#).unwrap(), Json::str("é"));
    }
}
