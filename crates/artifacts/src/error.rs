//! Typed errors for the artifact layer.
//!
//! Three error families, matching the three failure surfaces:
//!
//! * [`CodecError`] — a byte buffer failed envelope or payload validation,
//! * [`JsonError`] — a manifest line failed to parse as JSON,
//! * [`StoreError`] — the on-disk store failed, either at the OS level
//!   ([`StoreError::Io`]) or because a stored object is damaged
//!   ([`StoreError::Corrupt`]).
//!
//! All three implement [`std::error::Error`]; `StoreError::source` chains to
//! the underlying I/O or codec error so callers can walk the cause chain.

use std::fmt;
use std::sync::Arc;

/// Errors from encoding or decoding a binary artifact envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer does not start with the `SDBA` artifact magic.
    BadMagic,
    /// The artifact holds a different schema than the decoder expected.
    SchemaMismatch {
        /// The schema the decoder was asked to read.
        expected: String,
        /// The schema the envelope declares.
        found: String,
    },
    /// The artifact's schema version is newer (or otherwise different) than
    /// this build supports.
    VersionUnsupported {
        /// The envelope's schema name.
        schema: String,
        /// The version the envelope declares.
        found: u32,
        /// The version this build reads and writes.
        supported: u32,
    },
    /// The buffer ended before the field being decoded was complete.
    Truncated {
        /// The field (or structure) being decoded when bytes ran out.
        context: &'static str,
    },
    /// The envelope checksum does not match the stored bytes.
    ChecksumMismatch,
    /// Well-formed data was followed by bytes that should not be there.
    TrailingBytes {
        /// How many unexpected bytes remained.
        extra: usize,
    },
    /// The payload decoded structurally but violates a semantic invariant
    /// (e.g. a taken count exceeding its executed count).
    Invalid {
        /// What invariant failed.
        context: String,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not an sdbp artifact (bad magic)"),
            CodecError::SchemaMismatch { expected, found } => {
                write!(f, "artifact schema is '{found}', expected '{expected}'")
            }
            CodecError::VersionUnsupported {
                schema,
                found,
                supported,
            } => write!(
                f,
                "unsupported {schema} version {found} (this build reads version {supported})"
            ),
            CodecError::Truncated { context } => {
                write!(f, "artifact truncated while reading {context}")
            }
            CodecError::ChecksumMismatch => write!(f, "artifact checksum mismatch"),
            CodecError::TrailingBytes { extra } => {
                write!(f, "{extra} unexpected trailing bytes after artifact")
            }
            CodecError::Invalid { context } => write!(f, "invalid artifact payload: {context}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A JSON parse failure, with the byte offset of the first bad character.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What the parser expected or rejected.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Errors from the on-disk content-addressed store.
///
/// `Io` wraps the OS error in an [`Arc`] so the variant stays [`Clone`]
/// (sweep results fan one store failure out to many cells).
#[derive(Debug, Clone)]
pub enum StoreError {
    /// An operating-system error while reading or writing the store.
    Io {
        /// The path the operation touched.
        path: String,
        /// The underlying OS error.
        source: Arc<std::io::Error>,
    },
    /// A stored object exists but fails validation: bad envelope, checksum
    /// mismatch, or content that no longer matches its digest.
    Corrupt {
        /// The damaged object's path.
        path: String,
        /// What validation failed.
        source: CodecError,
    },
}

impl StoreError {
    /// Builds an [`StoreError::Io`] from a path and an OS error.
    pub fn io(path: impl Into<String>, source: std::io::Error) -> Self {
        StoreError::Io {
            path: path.into(),
            source: Arc::new(source),
        }
    }
}

/// Compares by path plus error identity: [`std::io::Error`] itself is not
/// comparable, so `Io` variants compare by [`std::io::ErrorKind`].
impl PartialEq for StoreError {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (
                StoreError::Io { path, source },
                StoreError::Io {
                    path: p2,
                    source: s2,
                },
            ) => path == p2 && source.kind() == s2.kind(),
            (
                StoreError::Corrupt { path, source },
                StoreError::Corrupt {
                    path: p2,
                    source: s2,
                },
            ) => path == p2 && source == s2,
            _ => false,
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => write!(f, "store I/O failure at {path}: {source}"),
            StoreError::Corrupt { path, source } => {
                write!(f, "corrupt artifact at {path}: {source}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source.as_ref()),
            StoreError::Corrupt { source, .. } => Some(source),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn codec_errors_display_their_facts() {
        let e = CodecError::SchemaMismatch {
            expected: "a".into(),
            found: "b".into(),
        };
        assert!(e.to_string().contains("'b'"));
        assert!(e.to_string().contains("'a'"));
        let e = CodecError::VersionUnsupported {
            schema: "s".into(),
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("version 9"));
        assert!(e.to_string().contains("reads version 1"));
        assert!(CodecError::Truncated { context: "pc" }
            .to_string()
            .contains("pc"));
    }

    #[test]
    fn store_io_errors_compare_by_kind() {
        let not_found = || std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let a = StoreError::io("x", not_found());
        let b = StoreError::io("x", not_found());
        let c = StoreError::io("x", std::io::Error::other("boom"));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(
            a,
            StoreError::Corrupt {
                path: "x".into(),
                source: CodecError::BadMagic
            }
        );
    }

    #[test]
    fn store_errors_chain_sources() {
        let e = StoreError::io("p", std::io::Error::other("disk on fire"));
        assert!(e.source().unwrap().to_string().contains("disk on fire"));
        let e = StoreError::Corrupt {
            path: "p".into(),
            source: CodecError::ChecksumMismatch,
        };
        assert!(e.source().unwrap().to_string().contains("checksum"));
        assert!(e.to_string().contains("corrupt artifact at p"));
    }

    #[test]
    fn json_error_displays_offset() {
        let e = JsonError {
            offset: 7,
            message: "expected ':'".into(),
        };
        assert_eq!(e.to_string(), "json error at byte 7: expected ':'");
    }
}
