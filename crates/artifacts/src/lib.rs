//! Versioned artifact serialization and a content-addressed store.
//!
//! The paper's workflow is two-phase — a profiling pass produces artifacts
//! (bias profiles, accuracy profiles, hint databases) that a later
//! measurement pass consumes — and production-scale sweeps over predictor ×
//! size × scheme grids want those artifacts to be *durable*: computed once,
//! written to disk, and exchanged between runs rather than recomputed inside
//! every process. This crate is the serialization substrate that makes the
//! rest of the workspace's types storable:
//!
//! * [`Codec`] — a derive-free, hand-rolled binary serialization trait.
//!   Every artifact travels in a self-describing envelope (`SDBA` magic,
//!   schema name, schema version, payload length, FNV-1a checksum), so a
//!   reader can reject foreign files, future schema versions, and bit rot
//!   with a typed [`CodecError`] instead of a panic or garbage data.
//! * [`Digest`] / [`Hasher`] — a cheap deterministic 128-bit content digest
//!   (two independent FNV-1a lanes) used to key the store and to fingerprint
//!   experiment specs in run manifests.
//! * [`Store`] — a content-addressed object store on disk
//!   (`objects/<aa>/<rest>`), with atomic temp-file-then-rename writes and
//!   corruption detection on read.
//! * [`Json`] — a minimal JSON value with renderer and parser, used for the
//!   append-only `manifest.jsonl` run manifests (one JSON object per line).
//!
//! Like the workspace's offline `proptest`/`criterion` shims, everything
//! here is dependency-free by design: the build environment has no registry
//! access, so `serde` is not an option. The codecs are small, explicit, and
//! schema-versioned so stored artifacts survive code evolution.
//!
//! # Examples
//!
//! ```
//! use sdbp_artifacts::{Codec, CodecError, Decoder, Encoder};
//!
//! struct Point {
//!     x: u64,
//!     y: u64,
//! }
//!
//! impl Codec for Point {
//!     const SCHEMA: &'static str = "example-point";
//!     const VERSION: u32 = 1;
//!     fn encode_payload(&self, e: &mut Encoder) {
//!         e.u64(self.x);
//!         e.u64(self.y);
//!     }
//!     fn decode_payload(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
//!         Ok(Point {
//!             x: d.u64("x")?,
//!             y: d.u64("y")?,
//!         })
//!     }
//! }
//!
//! let bytes = Point { x: 3, y: 4 }.to_bytes();
//! let back = Point::from_bytes(&bytes).unwrap();
//! assert_eq!((back.x, back.y), (3, 4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod digest;
pub mod error;
pub mod json;
pub mod store;

pub use codec::{peek_schema, Codec, Decoder, Encoder, MAGIC};
pub use digest::{Digest, Hasher};
pub use error::{CodecError, JsonError, StoreError};
pub use json::Json;
pub use store::{Store, StoreEntry};
