//! # sdbp — Combining Static and Dynamic Branch Prediction to Reduce Destructive Aliasing
//!
//! A full Rust reproduction of Patil & Emer's HPCA 2000 study. Dynamic
//! branch predictors lose accuracy when two differently-behaving branches
//! share a counter (*destructive aliasing*); the paper shows that statically
//! predicting a profile-selected subset of branches — so they never touch
//! the dynamic tables — relieves that pressure. This workspace rebuilds the
//! whole experimental apparatus:
//!
//! * [`predictors`] — the five dynamic predictors the paper evaluates
//!   (bimodal, ghist/GAg, gshare, bi-mode, 2bcgskew) plus three
//!   related-work designs (agree, YAGS, e-gskew), all byte-budgeted and
//!   instrumented for collision counting;
//! * [`workloads`] — six synthetic SPECINT95-like benchmark models
//!   calibrated to the paper's Table 1/2/5 characteristics (the original
//!   Alpha binaries and Atom tracing are unavailable — see `DESIGN.md` §3);
//! * [`profiles`] — bias/accuracy profiling, the Spike-like mergeable
//!   profile database, and the `Static_95` / `Static_Acc` selection schemes
//!   (plus `Static_Fac` and the paper's future-work collision-aware
//!   scheme);
//! * [`core`] — the combined static+dynamic predictor, the MISPs/KI
//!   simulator with constructive/destructive collision classification, and
//!   the two-phase experiment runner;
//! * [`trace`] — the branch-event model, streaming sources, and trace
//!   codecs; [`passes`] — the composable streaming pass framework every
//!   trace consumer runs on (one traversal, many fused consumers);
//!   [`util`] — deterministic RNG and table rendering.
//!
//! The `sdbp-bench` crate regenerates every table and figure of the paper
//! (`cargo run --release -p sdbp-bench --bin all_experiments`), and the
//! `sdbp` CLI (`sdbp-cli`) drives individual simulations.
//!
//! # Quickstart
//!
//! Measure how much `Static_Acc` hints help a 4 KB gshare on the gcc model:
//!
//! ```
//! use sdbp::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let base = ExperimentSpec::self_trained(
//!     Benchmark::Gcc,
//!     PredictorConfig::new(PredictorKind::Gshare, 4096)?,
//!     SelectionScheme::None,
//! )
//! .with_instructions(300_000);
//!
//! let baseline = run_experiment(&base)?;
//! let improved = run_experiment(&base.clone().with_scheme(SelectionScheme::static_acc()))?;
//!
//! assert!(improved.stats.misp_per_ki() < baseline.stats.misp_per_ki());
//! println!(
//!     "gshare 4KB on gcc: {:.2} -> {:.2} MISPs/KI",
//!     baseline.stats.misp_per_ki(),
//!     improved.stats.misp_per_ki()
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sdbp_core as core;
pub use sdbp_passes as passes;
pub use sdbp_predictors as predictors;
pub use sdbp_profiles as profiles;
pub use sdbp_trace as trace;
pub use sdbp_util as util;
pub use sdbp_workloads as workloads;

/// The most commonly used items, re-exported flat.
///
/// ```
/// use sdbp::prelude::*;
///
/// let w = Workload::spec95(Benchmark::Compress);
/// assert_eq!(w.spec().name, "compress");
/// ```
pub mod prelude {
    pub use sdbp_core::{
        run_experiment, ArtifactCache, BranchAnalysis, BranchRecord, BranchResolution,
        CombinedPredictor, ExperimentSpec, Lab, ProfileSource, Report, ShiftPolicy, SimStats,
        Simulator, Sweep, SweepResult,
    };
    pub use sdbp_passes::{Pass, PassRunner};
    pub use sdbp_predictors::{
        Agree, BiMode, Bimodal, DynamicPredictor, EGskew, Ghist, Gselect, Gshare, Local,
        Prediction, PredictorConfig, PredictorKind, Tournament, TwoBcGskew, Yags,
    };
    pub use sdbp_profiles::{
        AccuracyProfile, BiasProfile, HintDatabase, ProfileDatabase, SelectionScheme,
    };
    pub use sdbp_trace::{
        BranchAddr, BranchEvent, BranchSource, Outcome, SliceSource, Trace, TraceBuilder,
        TraceStats,
    };
    pub use sdbp_workloads::{Benchmark, BranchBehavior, InputSet, Workload, WorkloadGenerator};
}
