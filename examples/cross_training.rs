//! Cross-training pitfalls and the merged-profile fix (the paper's §5.1).
//!
//! Profiles the perl and m88ksim models on their *train* inputs, applies the
//! resulting `Static_95` hints to *ref* runs, and shows the failure mode the
//! paper observed: branches that reverse behavior between inputs make naive
//! cross-trained hints actively harmful. Merging the per-input profiles in a
//! Spike-style database and dropping branches whose bias moved more than 5
//! points restores the benefit.
//!
//! Run with: `cargo run --release --example cross_training`

use sdbp::prelude::*;
use sdbp::util::table::{fixed, TableWriter};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lab = Lab::new();
    let mut table = TableWriter::with_columns(&[
        "program",
        "no static",
        "self-trained",
        "naive cross",
        "merged cross",
    ]);
    table.numeric();

    for benchmark in [Benchmark::Perl, Benchmark::M88ksim] {
        println!("running the four training regimes for {benchmark} ...");
        let base = ExperimentSpec::self_trained(
            benchmark,
            PredictorConfig::new(PredictorKind::Gshare, 16 * 1024)?,
            SelectionScheme::static_95(),
        )
        .with_instructions(4_000_000);

        let none = lab.run(&base.clone().with_scheme(SelectionScheme::None))?;
        let self_trained = lab.run(&base.clone().with_profile(ProfileSource::SelfTrained))?;
        let naive = lab.run(&base.clone().with_profile(ProfileSource::CrossTrained))?;
        let merged = lab.run(
            &base
                .clone()
                .with_profile(ProfileSource::MergedCrossTrained {
                    max_bias_change: 0.05,
                }),
        )?;

        table.row(vec![
            benchmark.name().to_string(),
            fixed(none.stats.misp_per_ki(), 3),
            fixed(self_trained.stats.misp_per_ki(), 3),
            fixed(naive.stats.misp_per_ki(), 3),
            fixed(merged.stats.misp_per_ki(), 3),
        ]);
    }

    println!("\ngshare 16KB + static_95, MISPs/KI under four training regimes:\n");
    println!("{}", table.render());
    println!("Naive cross-training can be WORSE than no static prediction at all —");
    println!("hot branches flipped direction between inputs, so their hints are wrong.");
    println!("The merged profile drops exactly those branches and recovers the win.");

    // Show the underlying evidence: how much branch behavior moved.
    for benchmark in [Benchmark::Perl, Benchmark::M88ksim] {
        let workload = Workload::spec95(benchmark);
        let train = TraceStats::from_source(
            workload
                .generator(InputSet::Train, 2000)
                .take_instructions(2_000_000),
        );
        let reference = TraceStats::from_source(
            workload
                .generator(InputSet::Ref, 2000)
                .take_instructions(2_000_000),
        );
        let cmp = reference.compare(&train);
        println!(
            "\n{benchmark}: {:.1}% of covered branches reversed majority direction between inputs",
            cmp.direction_change_rate_static() * 100.0
        );
    }
    Ok(())
}
