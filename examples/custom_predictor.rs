//! Bring your own predictor: implementing [`DynamicPredictor`] for a custom
//! scheme and running it through the full experiment pipeline.
//!
//! The example implements a *loop predictor* — a per-address table that
//! learns a branch's last run length of taken outcomes and predicts
//! not-taken exactly at the learned trip count — and combines it with
//! static hints, exactly like the built-in predictors.
//!
//! Run with: `cargo run --release --example custom_predictor`

use sdbp::prelude::*;

/// A toy per-address loop predictor.
///
/// Each entry tracks the current run of consecutive taken outcomes and the
/// length of the last completed run. Prediction: taken, unless the current
/// run has reached the learned length (then the loop is about to exit).
struct LoopPredictor {
    entries: Vec<LoopEntry>,
    latched: Option<(BranchAddr, u64)>,
    collisions: u64,
    tags: Vec<Option<BranchAddr>>,
}

#[derive(Debug, Clone, Copy, Default)]
struct LoopEntry {
    current_run: u32,
    learned_trip: u32,
    confident: bool,
}

impl LoopPredictor {
    fn new(size_bytes: usize) -> Self {
        // Each entry is modeled as ~8 bytes of state.
        let entries = (size_bytes / 8).next_power_of_two();
        Self {
            entries: vec![LoopEntry::default(); entries],
            latched: None,
            collisions: 0,
            tags: vec![None; entries],
        }
    }

    fn index(&self, pc: BranchAddr) -> u64 {
        pc.word_index() & (self.entries.len() as u64 - 1)
    }
}

impl DynamicPredictor for LoopPredictor {
    fn name(&self) -> &'static str {
        "loop"
    }

    fn size_bytes(&self) -> usize {
        self.entries.len() * 8
    }

    fn predict(&mut self, pc: BranchAddr) -> Prediction {
        let index = self.index(pc);
        let i = index as usize;
        let collision = matches!(self.tags[i], Some(prev) if prev != pc);
        if collision {
            self.collisions += 1;
        }
        self.tags[i] = Some(pc);
        let e = &self.entries[i];
        // Predict not-taken exactly at the learned exit point.
        let taken = !(e.confident && e.current_run >= e.learned_trip);
        self.latched = Some((pc, index));
        Prediction { taken, collision }
    }

    fn update(&mut self, pc: BranchAddr, taken: bool) {
        let (latched_pc, index) = self.latched.take().expect("predict before update");
        assert_eq!(latched_pc, pc, "update must follow predict for the same pc");
        let e = &mut self.entries[index as usize];
        if taken {
            e.current_run = e.current_run.saturating_add(1);
        } else {
            // A run just ended: learn (or confirm) the trip count.
            e.confident = e.learned_trip == e.current_run;
            e.learned_trip = e.current_run;
            e.current_run = 0;
        }
    }

    fn shift_history(&mut self, _taken: bool) {
        // No global history in this scheme.
    }

    fn total_collisions(&self) -> u64 {
        self.collisions
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Compare the toy predictor against bimodal on the loop-heavy ijpeg
    // model, with and without Static_95 hints.
    let workload = Workload::spec95(Benchmark::Ijpeg);
    let source = || {
        workload
            .generator(InputSet::Ref, 2000)
            .take_instructions(4_000_000)
    };

    // Phase one: profile for Static_95 hints. The source combinators window
    // the profiling stream declaratively: skip the first 500k instructions
    // of cold start, then keep one branch in four — bias *rates* survive
    // systematic sampling even though counts shrink.
    let bias = BiasProfile::from_source(source().skip_instructions(500_000).sample(4));
    let hints = SelectionScheme::static_95().select(&bias, None)?;
    println!("selected {} static hints on ijpeg", hints.len());

    for (label, hint_db) in [
        ("dynamic only", HintDatabase::new()),
        ("with static_95", hints),
    ] {
        for predictor in [
            Box::new(LoopPredictor::new(8 * 1024)) as Box<dyn DynamicPredictor>,
            Box::new(Bimodal::new(8 * 1024)),
        ] {
            let name = predictor.name();
            let mut combined =
                CombinedPredictor::new(predictor, hint_db.clone(), ShiftPolicy::NoShift);
            let stats = Simulator::new().run(source(), &mut combined);
            println!(
                "  {name:<8} {label:<16} {:.3} MISPs/KI (accuracy {:.2}%)",
                stats.misp_per_ki(),
                stats.accuracy() * 100.0
            );
        }
    }
    println!("\nThe trait is open: any scheme that can predict, update, and");
    println!("optionally track global history plugs into the same harness.");
    Ok(())
}
