//! Quickstart: the paper's core experiment in ~40 lines.
//!
//! Simulates a gshare predictor on the synthetic gcc workload, first purely
//! dynamic, then fronted by `Static_Acc` hints (statically predict every
//! branch whose bias beats the predictor's own per-branch accuracy), and
//! reports the MISPs/KI improvement and the collision reduction.
//!
//! Run with: `cargo run --release --example quickstart`

use sdbp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let predictor = PredictorConfig::new(PredictorKind::Gshare, 8 * 1024)?;
    let base = ExperimentSpec::self_trained(Benchmark::Gcc, predictor, SelectionScheme::None)
        .with_instructions(4_000_000);

    println!("running the dynamic baseline ...");
    let baseline = run_experiment(&base)?;

    println!("profiling, selecting hints, and re-running ...");
    let improved = run_experiment(&base.clone().with_scheme(SelectionScheme::static_acc()))?;

    println!("\n{}", baseline);
    println!("{}", improved);
    println!(
        "\nstatic prediction of {} branches cut MISPs/KI by {:+.1}% \
         and collisions from {} to {}",
        improved.hints,
        improved.improvement_over(&baseline) * 100.0,
        baseline.stats.collisions.total,
        improved.stats.collisions.total,
    );
    Ok(())
}
