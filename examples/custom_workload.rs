//! Build your own workload: a custom `WorkloadSpec` pushed through the
//! pipeline, plus a hand-written trace parsed from text.
//!
//! Shows the two ways to feed the simulator something that is not one of
//! the six calibrated SPECINT95 models: (1) a parameterized synthetic
//! program, (2) an external trace in the line-oriented text format.
//!
//! Run with: `cargo run --release --example custom_workload`

use sdbp::prelude::*;
use sdbp::workloads::{Mixture, Perturbation, WorkloadSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic "interpreter" workload: a big dispatch population of
    //    weakly biased branches plus a strongly biased error-check mass.
    let spec = WorkloadSpec {
        name: "interp",
        static_sites: 3000,
        cbrs_per_ki_train: 140.0,
        cbrs_per_ki_ref: 140.0,
        mixture: Mixture {
            strong_biased: 0.55,
            moderate_biased: 0.15,
            weak_biased: 0.15,
            correlated: 0.10,
            pattern: 0.03,
            loop_sites: 0.02,
        },
        zipf_exponent: 0.9,
        biased_stickiness: 0.9,
        latch_noise: 0.15,
        micro_chains: 0.3,
        straight_chains: 0.3,
        fixed_iter_chains: 0.6,
        mean_iterations: 8.0,
        perturbation: Perturbation::none(),
        train_instructions: 2_000_000,
        ref_instructions: 2_000_000,
    };
    let workload = Workload::from_spec(spec);

    // One traversal does double duty: a `tee` observer rides the first
    // simulation's event stream and feeds the trace statistics, instead of
    // spending a whole extra generation on a dedicated profiling pass.
    let mut stats = TraceStats::new();
    let mut results = Vec::new();
    {
        let mut predictor = CombinedPredictor::pure_dynamic(
            PredictorConfig::new(PredictorKind::Bimodal, 8 * 1024)?.build(),
        );
        let sim = Simulator::new().run(
            workload
                .generator(InputSet::Ref, 7)
                .take_instructions(2_000_000)
                .tee(|e| stats.record(e)),
            &mut predictor,
        );
        results.push((PredictorKind::Bimodal, sim));
    }
    println!(
        "custom workload 'interp': {} sites executed, {:.0} CBRs/KI, {:.1}% highly biased",
        stats.static_branches(),
        stats.cbrs_per_ki(),
        stats.dynamic_fraction_biased(0.95) * 100.0
    );

    for kind in [PredictorKind::Gshare, PredictorKind::TwoBcGskew] {
        let mut predictor =
            CombinedPredictor::pure_dynamic(PredictorConfig::new(kind, 8 * 1024)?.build());
        let sim = Simulator::new().run(
            workload
                .generator(InputSet::Ref, 7)
                .take_instructions(2_000_000),
            &mut predictor,
        );
        results.push((kind, sim));
    }
    for (kind, sim) in &results {
        println!("  {:<9} {:.3} MISPs/KI", kind.name(), sim.misp_per_ki());
    }

    // 2. An external trace in the text interchange format — e.g. produced
    //    by a Pin/DynamoRIO tool. Here: a tight alternating loop branch.
    let mut text = String::from("!name handwritten\n");
    for i in 0..2000 {
        text.push_str(if i % 2 == 0 {
            "1000 T 3\n"
        } else {
            "1000 N 3\n"
        });
    }
    let trace = sdbp::trace::read_text(&mut text.as_bytes())?;
    println!(
        "\nparsed external trace '{}': {} branches",
        trace.meta().name,
        trace.len()
    );
    for kind in [PredictorKind::Bimodal, PredictorKind::Ghist] {
        let mut predictor =
            CombinedPredictor::pure_dynamic(PredictorConfig::new(kind, 1024)?.build());
        let stats = Simulator::new().run(SliceSource::from_trace(&trace), &mut predictor);
        println!(
            "  {:<9} accuracy {:.1}% on the alternating branch",
            kind.name(),
            stats.accuracy() * 100.0
        );
    }
    println!("\n(bimodal cannot learn alternation; any history predictor can)");
    Ok(())
}
