//! Anatomy of destructive aliasing.
//!
//! Sweeps a gshare predictor across sizes on the gcc model (the paper's most
//! aliasing-bound program) and dissects every run: constructive vs
//! destructive collisions, and what happens to each population when static
//! hints remove the biased branches from the tables. This is the
//! measurement behind the paper's Figures 1–6.
//!
//! Run with: `cargo run --release --example aliasing_anatomy`

use sdbp::prelude::*;
use sdbp::util::table::{fixed, grouped, TableWriter};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lab = Lab::new();
    let mut table = TableWriter::with_columns(&[
        "size",
        "scheme",
        "MISPs/KI",
        "collisions",
        "constructive",
        "destructive",
        "destr. %",
    ]);
    table.numeric();

    for size_kb in [1usize, 4, 16, 64] {
        for scheme in [SelectionScheme::None, SelectionScheme::static_95()] {
            let spec = ExperimentSpec::self_trained(
                Benchmark::Gcc,
                PredictorConfig::new(PredictorKind::Gshare, size_kb * 1024)?,
                scheme,
            )
            .with_instructions(4_000_000);
            let report = lab.run(&spec)?;
            let c = report.stats.collisions;
            table.row(vec![
                format!("{size_kb}KB"),
                report.scheme_label.clone(),
                fixed(report.stats.misp_per_ki(), 3),
                grouped(c.total),
                grouped(c.constructive),
                grouped(c.destructive),
                format!("{:.0}%", c.destructive_fraction() * 100.0),
            ]);
        }
    }

    println!(
        "gshare on gcc — the aliasing anatomy:\n\n{}",
        table.render()
    );
    println!("Things to notice (the paper's observations):");
    println!(" * collisions fall as the table grows — and fall further with static hints;");
    println!(" * most collisions are destructive (Young et al.'s finding);");
    println!(" * the MISPs/KI benefit of static prediction is biggest when the table is small.");
    Ok(())
}
