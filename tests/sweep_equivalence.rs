//! Serial-vs-parallel equivalence of the sweep engine.
//!
//! The paper's results are only trustworthy if parallelising the grids
//! changes nothing: a [`Sweep`] over N specs must produce exactly the
//! [`Report`]s that a serial [`Lab`] produces for the same specs, in the
//! same order. These tests pin that contract on a miniature figure-style
//! grid, including the collision breakdowns that drive Figures 1–6.

use sdbp::core::{ExperimentSpec, Lab, Sweep};
use sdbp::predictors::{PredictorConfig, PredictorKind};
use sdbp::profiles::SelectionScheme;
use sdbp::workloads::Benchmark;
use std::sync::Arc;

/// A small figure-style grid: 2 benchmarks × 2 sizes × 2 schemes.
fn grid() -> Vec<ExperimentSpec> {
    let mut specs = Vec::new();
    for benchmark in [Benchmark::Compress, Benchmark::M88ksim] {
        for size in [1024usize, 4096] {
            for scheme in [SelectionScheme::None, SelectionScheme::static_95()] {
                specs.push(
                    ExperimentSpec::self_trained(
                        benchmark,
                        PredictorConfig::new(PredictorKind::Gshare, size).unwrap(),
                        scheme,
                    )
                    .with_instructions(200_000),
                );
            }
        }
    }
    specs
}

#[test]
fn parallel_sweep_matches_serial_lab_exactly() {
    let specs = grid();
    let lab = Lab::new();
    let serial: Vec<_> = specs.iter().map(|s| lab.run(s).unwrap()).collect();

    let result = Sweep::new(specs.clone()).with_threads(4).run();
    assert_eq!(result.threads, 4.min(specs.len()));
    let parallel = result.into_reports().unwrap();

    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s.benchmark, p.benchmark, "cell {i}: benchmark");
        assert_eq!(s.predictor, p.predictor, "cell {i}: predictor");
        assert_eq!(s.hints, p.hints, "cell {i}: selected hint count");
        assert_eq!(
            s.stats.misp_per_ki(),
            p.stats.misp_per_ki(),
            "cell {i}: MISPs/KI must be bit-identical"
        );
        assert_eq!(
            s.stats.collisions.destructive, p.stats.collisions.destructive,
            "cell {i}: destructive collisions"
        );
        assert_eq!(
            s.stats.collisions.constructive, p.stats.collisions.constructive,
            "cell {i}: constructive collisions"
        );
        assert_eq!(s.stats, p.stats, "cell {i}: full stats block");
    }
    // Belt and braces: the whole reports compare equal too.
    assert_eq!(serial, parallel);
}

#[test]
fn repeated_parallel_sweeps_are_deterministic() {
    let first = Sweep::new(grid())
        .with_threads(4)
        .run()
        .into_reports()
        .unwrap();
    let second = Sweep::new(grid())
        .with_threads(2)
        .run()
        .into_reports()
        .unwrap();
    assert_eq!(
        first, second,
        "reports must not depend on thread count or scheduling"
    );
}

#[test]
fn sweep_sharing_a_lab_cache_reuses_artifacts() {
    let lab = Lab::new();
    // Warm the cache serially ...
    for spec in &grid() {
        lab.run(spec).unwrap();
    }
    // ... then the parallel sweep over the same grid must not recompute any
    // profile, and must still agree with the serial results.
    let result = Sweep::new(grid())
        .with_cache(lab.cache())
        .with_threads(4)
        .run();
    assert_eq!(
        result.cache_stats.bias_misses + result.cache_stats.accuracy_misses,
        0,
        "warm cache must serve every profile: {}",
        result.cache_stats
    );
    assert!(result.cache_stats.hits() > 0);
    let parallel = result.into_reports().unwrap();
    let serial: Vec<_> = grid().iter().map(|s| lab.run(s).unwrap()).collect();
    assert_eq!(serial, parallel);
}

#[test]
fn sweep_cache_is_shareable_across_sweeps() {
    let cache = Arc::new(sdbp::core::ArtifactCache::new());
    let specs = grid();
    let cold = Sweep::new(specs.clone())
        .with_cache(Arc::clone(&cache))
        .with_threads(4)
        .run();
    let warm = Sweep::new(specs).with_cache(cache).with_threads(4).run();
    assert!(cold.cache_stats.misses() > 0);
    assert_eq!(
        warm.cache_stats.bias_misses + warm.cache_stats.accuracy_misses,
        0
    );
    assert_eq!(
        cold.into_reports().unwrap(),
        warm.into_reports().unwrap(),
        "cache reuse must not change results"
    );
}
