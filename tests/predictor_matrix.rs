//! Exercises every predictor kind across sizes on real workload streams,
//! checking protocol soundness and sanity bounds.

use sdbp::prelude::*;

fn measure(kind: PredictorKind, size: usize, benchmark: Benchmark) -> SimStats {
    let mut predictor = CombinedPredictor::pure_dynamic(
        PredictorConfig::new(kind, size)
            .expect("valid size")
            .build(),
    );
    Simulator::new().run(
        Workload::spec95(benchmark)
            .generator(InputSet::Ref, 2000)
            .take_instructions(600_000),
        &mut predictor,
    )
}

#[test]
fn every_predictor_beats_a_coin_on_a_biased_workload() {
    for kind in PredictorKind::ALL {
        let stats = measure(kind, 4096, Benchmark::M88ksim);
        assert!(
            stats.accuracy() > 0.80,
            "{kind}: accuracy {:.3} on m88ksim",
            stats.accuracy()
        );
    }
}

#[test]
fn every_predictor_runs_at_every_sweep_size() {
    for kind in PredictorKind::ALL {
        for size in [1024usize, 8 * 1024, 64 * 1024] {
            let stats = measure(kind, size, Benchmark::Compress);
            assert!(
                stats.branches > 10_000,
                "{kind} at {size}: too few branches"
            );
            assert!(
                (0.0..=1.0).contains(&stats.accuracy()),
                "{kind} at {size}: accuracy out of range"
            );
        }
    }
}

#[test]
fn bigger_tables_never_explode_mispredictions() {
    // Capacity can only help (or at worst plateau) on an aliasing-bound
    // program; allow a small tolerance for indexing noise.
    for kind in [
        PredictorKind::Bimodal,
        PredictorKind::Gshare,
        PredictorKind::TwoBcGskew,
    ] {
        let small = measure(kind, 1024, Benchmark::Gcc);
        let large = measure(kind, 64 * 1024, Benchmark::Gcc);
        assert!(
            large.misp_per_ki() <= small.misp_per_ki() * 1.05,
            "{kind}: 64KB ({:.3}) worse than 1KB ({:.3})",
            large.misp_per_ki(),
            small.misp_per_ki()
        );
    }
}

#[test]
fn collision_counts_scale_down_with_table_size() {
    for kind in [PredictorKind::Ghist, PredictorKind::Gshare] {
        let small = measure(kind, 1024, Benchmark::Gcc);
        let large = measure(kind, 64 * 1024, Benchmark::Gcc);
        assert!(
            large.collisions.total < small.collisions.total,
            "{kind}: collisions must drop with capacity ({} -> {})",
            small.collisions.total,
            large.collisions.total
        );
    }
}

#[test]
fn bimodal_shows_least_aliasing() {
    // The paper: almost no aliasing in bimodal tables above 2KB, while the
    // history-indexed schemes alias heavily at equal size.
    let bimodal = measure(PredictorKind::Bimodal, 8 * 1024, Benchmark::Gcc);
    let gshare = measure(PredictorKind::Gshare, 8 * 1024, Benchmark::Gcc);
    assert!(
        bimodal.collisions.total * 10 < gshare.collisions.total,
        "bimodal {} vs gshare {}",
        bimodal.collisions.total,
        gshare.collisions.total
    );
}

#[test]
fn declared_sizes_are_honored() {
    for kind in PredictorKind::ALL {
        let p = PredictorConfig::new(kind, 16 * 1024)
            .expect("valid")
            .build();
        let size = p.size_bytes();
        // agree carries a 1-bit bias table on top of its counters (1.5x);
        // e-gskew rounds its banks down; everything else matches exactly.
        assert!(
            (8 * 1024..=24 * 1024).contains(&size),
            "{kind}: {size} bytes for a 16KB budget"
        );
    }
}
