//! End-to-end pipeline invariants: workload → profile → hints → simulate.

use sdbp::prelude::*;

fn spec(scheme: SelectionScheme) -> ExperimentSpec {
    ExperimentSpec::self_trained(
        Benchmark::Compress,
        PredictorConfig::new(PredictorKind::Gshare, 2048).expect("valid size"),
        scheme,
    )
    .with_instructions(400_000)
}

#[test]
fn misp_per_ki_is_bounded_by_cbrs_per_ki() {
    for scheme in [SelectionScheme::None, SelectionScheme::static_acc()] {
        let report = run_experiment(&spec(scheme)).expect("well-formed spec");
        assert!(report.stats.misp_per_ki() <= report.stats.cbrs_per_ki());
        assert!(report.stats.misp_per_ki() > 0.0, "nothing is perfect");
    }
}

#[test]
fn accounting_identities_hold() {
    let report = run_experiment(&spec(SelectionScheme::static_95())).expect("well-formed spec");
    let s = &report.stats;
    assert!(s.mispredictions <= s.branches);
    assert!(s.static_predicted <= s.branches);
    assert!(s.static_mispredictions <= s.static_predicted);
    assert_eq!(
        s.collisions.total,
        s.collisions.constructive + s.collisions.destructive
    );
    assert!(s.branches < s.instructions);
    assert!((0.0..=1.0).contains(&s.accuracy()));
}

#[test]
fn experiments_are_bit_reproducible() {
    let a = run_experiment(&spec(SelectionScheme::static_acc())).expect("well-formed spec");
    let b = run_experiment(&spec(SelectionScheme::static_acc())).expect("well-formed spec");
    assert_eq!(a, b, "same spec must give identical reports");
}

#[test]
fn different_seeds_give_different_streams_but_similar_rates() {
    let a = run_experiment(&spec(SelectionScheme::None).with_seed(1)).expect("well-formed spec");
    let b = run_experiment(&spec(SelectionScheme::None).with_seed(2)).expect("well-formed spec");
    assert_ne!(
        a.stats.mispredictions, b.stats.mispredictions,
        "distinct seeds should perturb the run"
    );
    let ratio = a.stats.misp_per_ki() / b.stats.misp_per_ki();
    assert!(
        (0.5..2.0).contains(&ratio),
        "rates should stay in the same ballpark: {ratio}"
    );
}

#[test]
fn static_branches_never_touch_dynamic_tables() {
    // With every executed branch statically predicted, the dynamic tables
    // must observe zero lookups -> zero collisions.
    let workload = Workload::spec95(Benchmark::Compress);
    let bias = BiasProfile::from_source(
        workload
            .generator(InputSet::Ref, 2000)
            .take_instructions(300_000),
    );
    // Select EVERY observed branch.
    let hints: HintDatabase = bias
        .iter()
        .map(|(pc, s)| (pc, s.majority_taken()))
        .collect();
    let mut combined = CombinedPredictor::new(
        PredictorConfig::new(PredictorKind::Gshare, 1024)
            .expect("valid size")
            .build(),
        hints,
        ShiftPolicy::NoShift,
    );
    let stats = Simulator::new().run(
        workload
            .generator(InputSet::Ref, 2000)
            .take_instructions(300_000),
        &mut combined,
    );
    assert_eq!(stats.static_predicted, stats.branches);
    assert_eq!(stats.collisions.total, 0);
    assert_eq!(combined.total_collisions(), 0);
}

#[test]
fn hint_count_matches_database_and_static_fraction_tracks_it() {
    let with_hints = run_experiment(&spec(SelectionScheme::static_95())).expect("well-formed");
    assert!(with_hints.hints > 0);
    assert!(with_hints.stats.static_fraction() > 0.05);
    // Statically predicted branches were selected for extreme bias, so the
    // static subset must be highly accurate under self-training.
    assert!(
        with_hints.stats.static_accuracy() > 0.93,
        "static accuracy {}",
        with_hints.stats.static_accuracy()
    );
}

#[test]
fn lab_cache_equals_fresh_runs() {
    let lab = Lab::new();
    let s = spec(SelectionScheme::static_acc());
    let cached_first = lab.run(&s).expect("well-formed");
    let cached_second = lab.run(&s).expect("well-formed");
    let fresh = run_experiment(&s).expect("well-formed");
    assert_eq!(cached_first, cached_second);
    assert_eq!(cached_first, fresh, "cache must not change results");
}
