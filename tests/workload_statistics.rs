//! Statistical soundness of the calibrated workload models — the properties
//! the experiment conclusions lean on, checked at reduced budgets.

use sdbp::prelude::*;

fn stats(benchmark: Benchmark, input: InputSet) -> TraceStats {
    TraceStats::from_source(
        Workload::spec95(benchmark)
            .generator(input, 2000)
            .take_instructions(2_000_000),
    )
}

#[test]
fn biased_fraction_ordering_matches_table_2() {
    // The paper's ordering extremes: go lowest, m88ksim highest.
    let go = stats(Benchmark::Go, InputSet::Ref).dynamic_fraction_biased(0.95);
    let perl = stats(Benchmark::Perl, InputSet::Ref).dynamic_fraction_biased(0.95);
    let m88 = stats(Benchmark::M88ksim, InputSet::Ref).dynamic_fraction_biased(0.95);
    assert!(go < 0.35, "go biased fraction {go}");
    assert!(m88 > 0.6, "m88ksim biased fraction {m88}");
    assert!(go < perl && perl < m88, "{go} < {perl} < {m88} violated");
}

#[test]
fn cbr_rates_track_table_1() {
    for (benchmark, lo, hi) in [
        (Benchmark::Gcc, 130.0, 190.0),
        (Benchmark::Ijpeg, 45.0, 85.0),
        (Benchmark::Compress, 95.0, 145.0),
    ] {
        let cbr = stats(benchmark, InputSet::Ref).cbrs_per_ki();
        assert!(
            (lo..hi).contains(&cbr),
            "{benchmark}: {cbr} outside [{lo}, {hi})"
        );
    }
}

#[test]
fn gcc_has_the_largest_working_set() {
    let gcc = stats(Benchmark::Gcc, InputSet::Ref).static_branches();
    for other in [Benchmark::Compress, Benchmark::M88ksim, Benchmark::Ijpeg] {
        let n = stats(other, InputSet::Ref).static_branches();
        assert!(gcc > n, "gcc {gcc} vs {other} {n}");
    }
}

#[test]
fn execution_is_concentrated_on_hot_sites() {
    // Zipf-style heat: the hottest 10% of executed sites should cover well
    // over a third of dynamic executions for every benchmark.
    for benchmark in Benchmark::ALL {
        let s = stats(benchmark, InputSet::Ref);
        let mut counts: Vec<u64> = s.iter().map(|(_, site)| site.executed).collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top = counts.len().div_ceil(10);
        let hot: u64 = counts.iter().take(top).sum();
        let frac = hot as f64 / s.dynamic_branches() as f64;
        assert!(
            frac > 0.35,
            "{benchmark}: top-10% sites cover only {frac:.2}"
        );
    }
}

#[test]
fn train_ref_drift_is_moderate_and_perl_is_worst_covered() {
    let mut coverages = Vec::new();
    for benchmark in Benchmark::ALL {
        let train = stats(benchmark, InputSet::Train);
        let reference = stats(benchmark, InputSet::Ref);
        let cmp = reference.compare(&train);
        let dir = cmp.direction_change_rate_static();
        assert!(
            (0.005..0.30).contains(&dir),
            "{benchmark}: direction-change rate {dir}"
        );
        assert!(
            cmp.coverage_dynamic() > 0.5,
            "{benchmark}: dynamic coverage {}",
            cmp.coverage_dynamic()
        );
        coverages.push((benchmark, cmp.coverage_dynamic()));
    }
    // perl models the paper's poorly-covered program: it must sit in the
    // bottom half of the coverage ranking.
    coverages.sort_by(|a, b| a.1.total_cmp(&b.1));
    let perl_rank = coverages
        .iter()
        .position(|(b, _)| *b == Benchmark::Perl)
        .expect("perl present");
    assert!(
        perl_rank < 3,
        "perl coverage rank {perl_rank}: {coverages:?}"
    );
}

#[test]
fn same_seed_same_statistics_across_calls() {
    let a = stats(Benchmark::Go, InputSet::Ref);
    let b = stats(Benchmark::Go, InputSet::Ref);
    assert_eq!(a.dynamic_branches(), b.dynamic_branches());
    assert_eq!(a.static_branches(), b.static_branches());
    assert_eq!(a.total_instructions(), b.total_instructions());
}
