//! Cross-crate codec tests: real workload traces through both codecs,
//! including on-disk files.

use sdbp::prelude::*;
use sdbp::trace::{read_binary, read_text, write_binary, write_text};
use std::fs;

fn workload_trace(instructions: u64) -> Trace {
    Workload::spec95(Benchmark::Perl)
        .generator(InputSet::Train, 99)
        .take_instructions(instructions)
        .collect_trace()
}

#[test]
fn binary_roundtrips_a_real_workload_trace() {
    let trace = workload_trace(200_000);
    let mut buf = Vec::new();
    write_binary(&mut buf, &trace).expect("in-memory write");
    let back = read_binary(&mut &buf[..]).expect("own output parses");
    assert_eq!(back, trace);
    // Delta+varint coding should be compact on real streams.
    assert!(
        buf.len() < trace.len() * 4,
        "{} bytes for {} events",
        buf.len(),
        trace.len()
    );
}

#[test]
fn text_roundtrips_a_real_workload_trace() {
    let trace = workload_trace(100_000);
    let mut buf = Vec::new();
    write_text(&mut buf, &trace).expect("in-memory write");
    let back = read_text(&mut &buf[..]).expect("own output parses");
    assert_eq!(back.events(), trace.events());
    assert_eq!(back.meta().name, trace.meta().name);
}

#[test]
fn formats_agree_with_each_other() {
    let trace = workload_trace(50_000);
    let mut bin = Vec::new();
    write_binary(&mut bin, &trace).expect("write");
    let mut text = Vec::new();
    write_text(&mut text, &trace).expect("write");
    let from_bin = read_binary(&mut &bin[..]).expect("read");
    let from_text = read_text(&mut &text[..]).expect("read");
    assert_eq!(from_bin.events(), from_text.events());
}

#[test]
fn file_roundtrip_and_simulation_equivalence() {
    // Simulating from a file must give bit-identical results to simulating
    // the live generator.
    let dir = std::env::temp_dir().join(format!("sdbp-codec-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("perl.sdbt");

    let trace = workload_trace(200_000);
    let mut buf = Vec::new();
    write_binary(&mut buf, &trace).expect("write");
    fs::write(&path, &buf).expect("write file");

    let loaded = read_binary(&mut fs::File::open(&path).expect("open")).expect("read file");
    let mut live = CombinedPredictor::pure_dynamic(
        PredictorConfig::new(PredictorKind::Gshare, 2048)
            .expect("valid")
            .build(),
    );
    let live_stats = Simulator::new().run(SliceSource::from_trace(&trace), &mut live);
    let mut from_file = CombinedPredictor::pure_dynamic(
        PredictorConfig::new(PredictorKind::Gshare, 2048)
            .expect("valid")
            .build(),
    );
    let file_stats = Simulator::new().run(SliceSource::from_trace(&loaded), &mut from_file);
    assert_eq!(live_stats, file_stats);

    fs::remove_dir_all(&dir).ok();
}
