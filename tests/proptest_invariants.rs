//! Property-based tests of cross-crate invariants.

use proptest::prelude::*;
use sdbp::prelude::*;

fn arb_event() -> impl Strategy<Value = BranchEvent> {
    // Word-aligned PCs in a modest window, so streams actually alias.
    (0u64..4096, any::<bool>(), 0u32..64)
        .prop_map(|(word, taken, gap)| BranchEvent::new(BranchAddr(word * 4), taken, gap))
}

fn arb_events() -> impl Strategy<Value = Vec<BranchEvent>> {
    proptest::collection::vec(arb_event(), 1..400)
}

fn arb_hints() -> impl Strategy<Value = Vec<(u64, bool)>> {
    proptest::collection::vec((0u64..4096, any::<bool>()), 0..64)
}

proptest! {
    /// The simulator's accounting identities hold for arbitrary streams and
    /// arbitrary hint databases, on every predictor kind.
    #[test]
    fn simulator_accounting_holds(
        events in arb_events(),
        hints in arb_hints(),
        kind_idx in 0usize..PredictorKind::ALL.len(),
        shift in any::<bool>(),
    ) {
        let kind = PredictorKind::ALL[kind_idx];
        let db: HintDatabase = hints
            .iter()
            .map(|(w, taken)| (BranchAddr(w * 4), *taken))
            .collect();
        let policy = if shift { ShiftPolicy::Shift } else { ShiftPolicy::NoShift };
        let mut combined = CombinedPredictor::new(
            PredictorConfig::new(kind, 1024).expect("valid").build(),
            db.clone(),
            policy,
        );
        let stats = Simulator::new().run(SliceSource::new(&events), &mut combined);

        prop_assert_eq!(stats.branches, events.len() as u64);
        prop_assert_eq!(
            stats.instructions,
            events.iter().map(|e| e.instructions()).sum::<u64>()
        );
        prop_assert!(stats.mispredictions <= stats.branches);
        prop_assert!(stats.static_mispredictions <= stats.static_predicted);
        prop_assert_eq!(
            stats.static_predicted,
            events.iter().filter(|e| db.contains(e.pc)).count() as u64
        );
        prop_assert_eq!(
            stats.collisions.total,
            stats.collisions.constructive + stats.collisions.destructive
        );
    }

    /// Simulation is a pure function of (events, hints, predictor, policy).
    #[test]
    fn simulation_is_deterministic(events in arb_events(), hints in arb_hints()) {
        let db: HintDatabase = hints
            .iter()
            .map(|(w, taken)| (BranchAddr(w * 4), *taken))
            .collect();
        let run = || {
            let mut combined = CombinedPredictor::new(
                PredictorConfig::new(PredictorKind::TwoBcGskew, 1024)
                    .expect("valid")
                    .build(),
                db.clone(),
                ShiftPolicy::Shift,
            );
            Simulator::new().run(SliceSource::new(&events), &mut combined)
        };
        prop_assert_eq!(run(), run());
    }

    /// Selection never hints a branch against its own majority, and every
    /// scheme's output is a subset of the profiled branches.
    #[test]
    fn selection_respects_majority_direction(events in arb_events(), cutoff in 0.5f64..0.99) {
        let bias = BiasProfile::from_source(SliceSource::new(&events));
        let hints = SelectionScheme::Bias { cutoff }
            .select(&bias, None)
            .expect("bias scheme needs no accuracy profile");
        for (pc, hint) in hints.iter() {
            let site = bias.site(pc).expect("hinted branches were profiled");
            prop_assert_eq!(hint, site.majority_taken(), "hint against majority at {}", pc);
            prop_assert!(site.bias() > cutoff);
        }
    }

    /// Stricter cutoffs select subsets.
    #[test]
    fn stricter_cutoffs_select_subsets(events in arb_events()) {
        let bias = BiasProfile::from_source(SliceSource::new(&events));
        let lax = SelectionScheme::Bias { cutoff: 0.7 }.select(&bias, None).expect("ok");
        let strict = SelectionScheme::Bias { cutoff: 0.9 }.select(&bias, None).expect("ok");
        prop_assert!(strict.len() <= lax.len());
        for (pc, _) in strict.iter() {
            prop_assert!(lax.contains(pc));
        }
    }

    /// Hint databases round-trip through their text format.
    #[test]
    fn hint_database_text_roundtrip(hints in arb_hints()) {
        let db: HintDatabase = hints
            .iter()
            .map(|(w, taken)| (BranchAddr(w * 4), *taken))
            .collect();
        let back = HintDatabase::from_text(&db.to_text()).expect("own output parses");
        prop_assert_eq!(back, db);
    }

    /// Profile merging is commutative and preserves totals.
    #[test]
    fn profile_merge_commutes(a in arb_events(), b in arb_events()) {
        let pa = BiasProfile::from_source(SliceSource::new(&a));
        let pb = BiasProfile::from_source(SliceSource::new(&b));
        let mut ab = pa.clone();
        ab.merge(&pb);
        let mut ba = pb.clone();
        ba.merge(&pa);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(
            ab.total_executions(),
            (a.len() + b.len()) as u64
        );
    }
}
